"""Simulated point-to-point network with traffic accounting.

The network does not model latency (the engine is cycle-driven, as in
Peersim's cycle-based mode used by the demonstration); it models *delivery*
— possibly dropping messages according to the fault model — and keeps the
per-node and global traffic statistics that the cost analysis (claim C3 of
the paper) reports: messages and bytes sent and received per participant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .._validation import check_non_negative_int, check_probability
from ..exceptions import SimulationError


@dataclass(frozen=True)
class Message:
    """One point-to-point message.

    ``size_bytes`` is declared by the sender; with the wire format enabled
    it is the *measured* length of the serialized frame carried in
    ``payload``, otherwise the modelled size the protocol layer computed.
    ``modelled_bytes`` optionally carries the modelled size alongside a
    measured frame, so the cost analysis can report measured-vs-modelled
    byte accounting; it defaults to ``size_bytes``.
    """

    sender: int
    recipient: int
    kind: str
    payload: Any
    size_bytes: int = 0
    modelled_bytes: int | None = None

    def __post_init__(self) -> None:
        check_non_negative_int(self.size_bytes, "size_bytes")
        if self.modelled_bytes is None:
            object.__setattr__(self, "modelled_bytes", self.size_bytes)
        else:
            check_non_negative_int(self.modelled_bytes, "modelled_bytes")


@dataclass
class TrafficStats:
    """Traffic counters for one node (or aggregated over all nodes).

    ``bytes_sent`` accounts what actually crossed the (simulated) network —
    measured frame lengths when the wire format is on, modelled sizes
    otherwise.  ``bytes_modelled`` always accumulates the modelled sizes, so
    the two columns coincide with the wire format off and diverge by exactly
    the framing overhead with it on.
    """

    messages_sent: int = 0
    messages_received: int = 0
    messages_dropped: int = 0
    messages_corrupted: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    bytes_modelled: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain dictionary view."""
        return {
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "messages_dropped": self.messages_dropped,
            "messages_corrupted": self.messages_corrupted,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "bytes_modelled": self.bytes_modelled,
        }


@dataclass(frozen=True)
class ByteAccounting:
    """Measured-vs-modelled byte totals of a run (or of a workload model).

    ``bytes_modelled`` is what the historical size formula charges;
    ``bytes_measured`` is what actually crossed the network as serialized
    frames (or a model's prediction of it).  The gap is the wire-format
    framing overhead.  Lives next to :class:`TrafficStats`, which it
    summarises; re-exported by :mod:`repro.analysis.costs` for reports.
    """

    bytes_modelled: float
    bytes_measured: float

    @property
    def overhead_fraction(self) -> float:
        """Relative overhead of measured over modelled bytes (0 when unknown)."""
        if self.bytes_modelled <= 0:
            return 0.0
        return (self.bytes_measured - self.bytes_modelled) / self.bytes_modelled

    @classmethod
    def from_traffic(cls, stats: TrafficStats) -> "ByteAccounting":
        """Build from one node's (or the global) traffic counters."""
        return cls(
            bytes_modelled=float(stats.bytes_modelled),
            bytes_measured=float(stats.bytes_sent),
        )

    def as_dict(self) -> dict[str, float]:
        """Plain dictionary view (for reports)."""
        return {
            "bytes_modelled": self.bytes_modelled,
            "bytes_measured": self.bytes_measured,
            "overhead_fraction": self.overhead_fraction,
        }


class Network:
    """Synchronous message delivery with loss and traffic accounting.

    Parameters
    ----------
    n_nodes:
        Number of addressable nodes (ids 0 .. n_nodes-1).
    drop_probability:
        Probability that any given message is silently lost.
    rng:
        Random stream used for message drops.
    corruption_probability:
        Probability that a *delivered* byte-frame payload has one random
        bit flipped in transit (the corruption fault model; only byte
        payloads can be corrupted).
    corruption_rng:
        Random stream used for corruption draws (kept separate from the
        drop stream so enabling one fault model never shifts the other).
    """

    def __init__(
        self,
        n_nodes: int,
        drop_probability: float = 0.0,
        rng: np.random.Generator | None = None,
        corruption_probability: float = 0.0,
        corruption_rng: np.random.Generator | None = None,
    ) -> None:
        if n_nodes <= 0:
            raise SimulationError(f"n_nodes must be > 0, got {n_nodes}")
        self.n_nodes = n_nodes
        self.drop_probability = check_probability(drop_probability, "drop_probability")
        self.corruption_probability = check_probability(
            corruption_probability, "corruption_probability"
        )
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._corruption_rng = (
            corruption_rng if corruption_rng is not None else np.random.default_rng(1)
        )
        self._per_node: list[TrafficStats] = [TrafficStats() for _ in range(n_nodes)]
        self.total = TrafficStats()

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < self.n_nodes:
            raise SimulationError(f"node id {node_id} outside [0, {self.n_nodes})")

    def account_send(self, message: Message) -> bool:
        """Account *message* to its sender; return False when it was dropped.

        This is the sender half of the authoritative byte-count site (see
        :class:`~repro.net.transport.Transport`): every transport charges a
        message's ``bytes_sent``/``bytes_modelled`` exactly once, here, at
        the sending side.  The drop draw also lives here so that the loss
        fault model consumes its randomness in global send order.
        """
        self._check_node(message.sender)
        self._check_node(message.recipient)
        sender_stats = self._per_node[message.sender]
        modelled = int(message.modelled_bytes or 0)
        sender_stats.messages_sent += 1
        sender_stats.bytes_sent += message.size_bytes
        sender_stats.bytes_modelled += modelled
        self.total.messages_sent += 1
        self.total.bytes_sent += message.size_bytes
        self.total.bytes_modelled += modelled
        if self.drop_probability > 0 and self._rng.random() < self.drop_probability:
            sender_stats.messages_dropped += 1
            self.total.messages_dropped += 1
            return False
        return True

    def account_receive(self, message: Message) -> None:
        """Account a delivered *message* to its recipient.

        The receiver half of the authoritative byte-count site: in the
        multi-process runner this runs on the worker hosting the recipient,
        so per-node receive counters are only ever touched by one process.
        """
        self._check_node(message.recipient)
        recipient_stats = self._per_node[message.recipient]
        recipient_stats.messages_received += 1
        recipient_stats.bytes_received += message.size_bytes
        self.total.messages_received += 1
        self.total.bytes_received += message.size_bytes

    def send(self, message: Message) -> bool:
        """Deliver *message*; return False when it was dropped.

        Sending is always accounted to the sender; reception only when the
        message is actually delivered.
        """
        delivered = self.account_send(message)
        if delivered:
            self.account_receive(message)
        return delivered

    def maybe_corrupt(self, payload: bytes, sender: int | None = None) -> bytes:
        """Apply the corruption fault model to a delivered byte payload.

        With probability ``corruption_probability`` one uniformly random bit
        of *payload* is flipped (a checksummed wire frame then fails to
        decode).  No randomness is consumed when the model is disabled or
        the payload is empty, so enabling corruption never perturbs runs
        that do not use it.
        """
        if self.corruption_probability <= 0 or not payload:
            return payload
        if self._corruption_rng.random() >= self.corruption_probability:
            return payload
        corrupted = bytearray(payload)
        position = int(self._corruption_rng.integers(0, len(corrupted) * 8))
        corrupted[position // 8] ^= 1 << (position % 8)
        if sender is not None:
            self._per_node[sender].messages_corrupted += 1
        self.total.messages_corrupted += 1
        return bytes(corrupted)

    def stats_for(self, node_id: int) -> TrafficStats:
        """Traffic counters of one node."""
        self._check_node(node_id)
        return self._per_node[node_id]

    def per_node_stats(self) -> list[TrafficStats]:
        """Traffic counters of every node, indexed by node id."""
        return list(self._per_node)

    def average_bytes_sent(self) -> float:
        """Average bytes sent per node (the headline network-cost figure)."""
        return self.total.bytes_sent / self.n_nodes

    def average_messages_sent(self) -> float:
        """Average messages sent per node."""
        return self.total.messages_sent / self.n_nodes

    def reset_stats(self) -> None:
        """Zero every counter (between experiment phases)."""
        self._per_node = [TrafficStats() for _ in range(self.n_nodes)]
        self.total = TrafficStats()
