"""Simulated point-to-point network with traffic accounting.

The network does not model latency (the engine is cycle-driven, as in
Peersim's cycle-based mode used by the demonstration); it models *delivery*
— possibly dropping messages according to the fault model — and keeps the
per-node and global traffic statistics that the cost analysis (claim C3 of
the paper) reports: messages and bytes sent and received per participant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .._validation import check_non_negative_int, check_probability
from ..exceptions import SimulationError


@dataclass(frozen=True)
class Message:
    """One point-to-point message.

    ``size_bytes`` is declared by the sender (the protocol layer knows how
    many ciphertexts / floats it serialises); the network only accounts it.
    """

    sender: int
    recipient: int
    kind: str
    payload: Any
    size_bytes: int = 0

    def __post_init__(self) -> None:
        check_non_negative_int(self.size_bytes, "size_bytes")


@dataclass
class TrafficStats:
    """Traffic counters for one node (or aggregated over all nodes)."""

    messages_sent: int = 0
    messages_received: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain dictionary view."""
        return {
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "messages_dropped": self.messages_dropped,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }


class Network:
    """Synchronous message delivery with loss and traffic accounting.

    Parameters
    ----------
    n_nodes:
        Number of addressable nodes (ids 0 .. n_nodes-1).
    drop_probability:
        Probability that any given message is silently lost.
    rng:
        Random stream used for message drops.
    """

    def __init__(
        self,
        n_nodes: int,
        drop_probability: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_nodes <= 0:
            raise SimulationError(f"n_nodes must be > 0, got {n_nodes}")
        self.n_nodes = n_nodes
        self.drop_probability = check_probability(drop_probability, "drop_probability")
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._per_node: list[TrafficStats] = [TrafficStats() for _ in range(n_nodes)]
        self.total = TrafficStats()

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < self.n_nodes:
            raise SimulationError(f"node id {node_id} outside [0, {self.n_nodes})")

    def send(self, message: Message) -> bool:
        """Deliver *message*; return False when it was dropped.

        Sending is always accounted to the sender; reception only when the
        message is actually delivered.
        """
        self._check_node(message.sender)
        self._check_node(message.recipient)
        sender_stats = self._per_node[message.sender]
        sender_stats.messages_sent += 1
        sender_stats.bytes_sent += message.size_bytes
        self.total.messages_sent += 1
        self.total.bytes_sent += message.size_bytes
        if self.drop_probability > 0 and self._rng.random() < self.drop_probability:
            sender_stats.messages_dropped += 1
            self.total.messages_dropped += 1
            return False
        recipient_stats = self._per_node[message.recipient]
        recipient_stats.messages_received += 1
        recipient_stats.bytes_received += message.size_bytes
        self.total.messages_received += 1
        self.total.bytes_received += message.size_bytes
        return True

    def stats_for(self, node_id: int) -> TrafficStats:
        """Traffic counters of one node."""
        self._check_node(node_id)
        return self._per_node[node_id]

    def per_node_stats(self) -> list[TrafficStats]:
        """Traffic counters of every node, indexed by node id."""
        return list(self._per_node)

    def average_bytes_sent(self) -> float:
        """Average bytes sent per node (the headline network-cost figure)."""
        return self.total.bytes_sent / self.n_nodes

    def average_messages_sent(self) -> float:
        """Average messages sent per node."""
        return self.total.messages_sent / self.n_nodes

    def reset_stats(self) -> None:
        """Zero every counter (between experiment phases)."""
        self._per_node = [TrafficStats() for _ in range(self.n_nodes)]
        self.total = TrafficStats()
