"""Observers: hooks the engine calls after every cycle.

Peersim separates protocols from "controls" that observe the global state;
the demonstration uses such controls to populate the execution log that the
GUI replays.  Observers here serve the same purpose: collecting per-cycle
measurements without polluting protocol code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .engine import CycleEngine


class Observer(Protocol):
    """Anything with an ``after_cycle(engine, cycle)`` method."""

    def after_cycle(self, engine: "CycleEngine", cycle: int) -> None:
        """Called by the engine after every completed cycle."""


class CallbackObserver:
    """Adapter turning a plain callable into an observer."""

    def __init__(self, callback: Callable[["CycleEngine", int], None]) -> None:
        self._callback = callback

    def after_cycle(self, engine: "CycleEngine", cycle: int) -> None:
        self._callback(engine, cycle)


class HistoryObserver:
    """Records one measurement per cycle using a probe function.

    Parameters
    ----------
    probe:
        Callable evaluated after every cycle; its return value is appended to
        :attr:`history`.
    every:
        Only record every *every*-th cycle (1 = every cycle).
    """

    def __init__(self, probe: Callable[["CycleEngine", int], Any], every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self._probe = probe
        self._every = every
        self.history: list[Any] = []
        self.cycles: list[int] = []

    def after_cycle(self, engine: "CycleEngine", cycle: int) -> None:
        if cycle % self._every == 0:
            self.history.append(self._probe(engine, cycle))
            self.cycles.append(cycle)


class OnlineCountObserver:
    """Tracks how many nodes are online at the end of every cycle."""

    def __init__(self) -> None:
        self.counts: list[int] = []

    def after_cycle(self, engine: "CycleEngine", cycle: int) -> None:
        self.counts.append(sum(1 for node in engine.nodes if node.online))
