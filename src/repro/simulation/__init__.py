"""Cycle-driven simulation substrate (the Peersim role of the demo platform)."""

from .engine import CycleEngine, run_until
from .network import Message, Network, TrafficStats
from .node import Node
from .observers import CallbackObserver, HistoryObserver, Observer, OnlineCountObserver
from .rng import RngRegistry
from .slab import (
    PopulationSlabs,
    ShardCoordinator,
    average_pairs_inplace,
    pair_online,
    slab_churn_step,
)

__all__ = [
    "CycleEngine",
    "run_until",
    "Network",
    "Message",
    "TrafficStats",
    "Node",
    "Observer",
    "CallbackObserver",
    "HistoryObserver",
    "OnlineCountObserver",
    "RngRegistry",
    "PopulationSlabs",
    "ShardCoordinator",
    "average_pairs_inplace",
    "pair_online",
    "slab_churn_step",
]
