"""Node abstraction of the cycle-driven simulator.

Mirrors Peersim's cycle-based node model used by the demonstration platform:
the engine calls :meth:`Node.next_cycle` once per cycle for every online
node, in a shuffled order, and nodes communicate by sending messages through
the engine's network or by direct method calls on peers obtained from the
engine (the usual Peersim idiom for pairwise gossip exchanges).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

from ..exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .engine import CycleEngine


class Node(ABC):
    """Base class of every simulated participant.

    ``online`` is a plain boolean to callers, but assignments are observed
    by the engine the node is registered with, which maintains an incremental
    online-id index instead of re-scanning the whole population on every
    peer-sampling call.
    """

    def __init__(self, node_id: int) -> None:
        if node_id < 0:
            raise SimulationError(f"node ids must be >= 0, got {node_id}")
        self.node_id = node_id
        self._online = True
        self._online_listener = None

    @property
    def online(self) -> bool:
        """Whether this node currently participates in cycles."""
        return self._online

    @online.setter
    def online(self, value: bool) -> None:
        value = bool(value)
        if value == self._online:
            return
        self._online = value
        if self._online_listener is not None:
            self._online_listener(self, value)

    @abstractmethod
    def next_cycle(self, engine: "CycleEngine", cycle: int) -> None:
        """Perform this node's work for simulation cycle *cycle*.

        This is the equivalent of Peersim's ``nextCycle`` method that the
        paper says implements the core of Chiaroscuro's execution sequence.
        """

    def receive(self, engine: "CycleEngine", message: Any) -> None:
        """Handle a message delivered by the engine (optional hook)."""

    def on_offline(self, engine: "CycleEngine", cycle: int) -> None:
        """Hook called when churn takes this node offline (optional)."""

    def on_online(self, engine: "CycleEngine", cycle: int) -> None:
        """Hook called when this node rejoins after churn (optional)."""

    def __repr__(self) -> str:
        state = "online" if self.online else "offline"
        return f"{type(self).__name__}(id={self.node_id}, {state})"
