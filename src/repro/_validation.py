"""Small argument-validation helpers shared across the library.

These helpers centralise the repetitive ``if not ...: raise`` checks so that
error messages stay consistent and call sites stay readable.  They raise
:class:`repro.exceptions.ValidationError` which is both a :class:`ReproError`
and a :class:`ValueError`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .exceptions import ValidationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with *message* unless *condition* holds."""
    if not condition:
        raise ValidationError(message)


def check_positive_int(value: int, name: str) -> int:
    """Validate that *value* is a strictly positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that *value* is an integer >= 0 and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_positive_float(value: float, name: str) -> float:
    """Validate that *value* is a finite, strictly positive number."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(value) or value <= 0.0:
        raise ValidationError(f"{name} must be a finite number > 0, got {value}")
    return value


def check_non_negative_float(value: float, name: str) -> float:
    """Validate that *value* is a finite number >= 0."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(value) or value < 0.0:
        raise ValidationError(f"{name} must be a finite number >= 0, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    value = check_non_negative_float(value, name)
    if value > 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_fraction_open(value: float, name: str) -> float:
    """Validate that *value* lies in the open interval (0, 1)."""
    value = check_positive_float(value, name)
    if value >= 1.0:
        raise ValidationError(f"{name} must be in (0, 1), got {value}")
    return value


def check_in_choices(value: str, choices: Iterable[str], name: str) -> str:
    """Validate that *value* is one of *choices* and return it."""
    options = sorted(choices)
    if value not in options:
        raise ValidationError(f"{name} must be one of {options}, got {value!r}")
    return value


def as_1d_float_array(values: Sequence[float] | np.ndarray, name: str) -> np.ndarray:
    """Convert *values* to a finite one-dimensional ``float64`` array."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} must contain only finite values")
    return array


def as_2d_float_array(values: Sequence[Sequence[float]] | np.ndarray, name: str) -> np.ndarray:
    """Convert *values* to a finite two-dimensional ``float64`` array."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 2:
        raise ValidationError(f"{name} must be two-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} must contain only finite values")
    return array


def check_same_length(a: np.ndarray, b: np.ndarray, what: str) -> None:
    """Validate that two arrays share their first-dimension length."""
    if len(a) != len(b):
        raise ValidationError(f"{what}: lengths differ ({len(a)} vs {len(b)})")
