"""Distributed generation of Laplace noise from per-participant noise-shares.

No single participant may know the noise that protects an aggregate —
otherwise it could subtract it.  Chiaroscuro therefore exploits the infinite
divisibility of the Laplace distribution (paper, Section II.A): a
Laplace(0, b) random variable is distributed exactly as the sum of *n*
independent terms

    share_i = G1_i - G2_i,   G1_i, G2_i ~ Gamma(shape=1/n, scale=b),

called *noise-shares*.  Each of *n* distinct participants draws one share,
encrypts it, and the shares are summed under encryption alongside the data;
after decryption the aggregate carries exactly one Laplace(0, b) sample that
nobody ever saw in the clear.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_float, check_positive_int
from ..exceptions import PrivacyError


@dataclass(frozen=True)
class NoiseShareSpec:
    """Specification of the noise-shares for one release.

    Attributes
    ----------
    scale:
        Target Laplace scale b of the reconstructed noise.
    n_shares:
        Number of participants contributing one share each.
    vector_length:
        Number of independent noise coordinates (one Laplace sample per
        released coordinate).
    """

    scale: float
    n_shares: int
    vector_length: int

    def __post_init__(self) -> None:
        check_positive_float(self.scale, "scale")
        check_positive_int(self.n_shares, "n_shares")
        check_positive_int(self.vector_length, "vector_length")


def draw_noise_share(spec: NoiseShareSpec, rng: np.random.Generator) -> np.ndarray:
    """Draw one participant's vector of noise-shares.

    Returns an array of length ``spec.vector_length``; summing ``spec.n_shares``
    independent such vectors yields i.i.d. Laplace(0, spec.scale) coordinates.
    """
    shape = 1.0 / spec.n_shares
    gamma_pos = rng.gamma(shape=shape, scale=spec.scale, size=spec.vector_length)
    gamma_neg = rng.gamma(shape=shape, scale=spec.scale, size=spec.vector_length)
    return gamma_pos - gamma_neg


def sum_of_shares(spec: NoiseShareSpec, rng: np.random.Generator) -> np.ndarray:
    """Sum of ``spec.n_shares`` independent noise-share vectors.

    Provided for tests and for the centralised emulation of the distributed
    noise generation; distributionally equal to Laplace(0, scale) coordinates.
    """
    total = np.zeros(spec.vector_length)
    for _ in range(spec.n_shares):
        total += draw_noise_share(spec, rng)
    return total


def share_variance(spec: NoiseShareSpec) -> float:
    """Variance of a single noise-share coordinate.

    Var(G1 - G2) = 2 * (1/n) * b², so the n-share sum has variance 2 b² —
    exactly the Laplace(0, b) variance.  Tests use this closed form.
    """
    return 2.0 * spec.scale**2 / spec.n_shares


def reconstructed_variance(spec: NoiseShareSpec) -> float:
    """Variance of the reconstructed (summed) noise coordinate: 2 b²."""
    return 2.0 * spec.scale**2


def slot_magnitude_bound(scale: float, margin: float = 32.0) -> float:
    """Magnitude bound one noise-share coordinate stays below in practice.

    A share coordinate is ``G1 - G2`` with ``G1, G2 ~ Gamma(shape <= 1,
    scale=b)``; for any shape at most one (always true here, shape = 1/n),
    ``P(G > margin * b) <= exp(-margin)``, so with the default margin of 32
    the per-draw exceedance probability is below 2e-14 — negligible over the
    at most millions of draws of a simulated run.  The packed cipher layer
    uses this bound to size slots so that encrypted noise shares fit; a draw
    beyond the bound raises :class:`~repro.exceptions.EncodingOverflowError`
    deterministically rather than corrupting a neighbouring slot.
    """
    if scale < 0:
        raise PrivacyError(f"scale must be >= 0, got {scale}")
    if margin <= 0:
        raise PrivacyError(f"margin must be > 0, got {margin}")
    return float(scale) * float(margin)


def effective_scale_with_dropouts(spec: NoiseShareSpec, delivered_shares: int) -> float:
    """Laplace scale actually achieved when only *delivered_shares* arrive.

    Gossip executions may lose shares (faulty devices).  The sum of m < n
    shares is not exactly Laplace but its variance is (m/n) * 2b²; the
    matched-variance Laplace scale b * sqrt(m/n) is what the privacy
    accountant uses to report the degraded protection level.
    """
    if delivered_shares < 0:
        raise PrivacyError(f"delivered_shares must be >= 0, got {delivered_shares}")
    if delivered_shares > spec.n_shares:
        raise PrivacyError(
            f"delivered_shares ({delivered_shares}) cannot exceed n_shares ({spec.n_shares})"
        )
    if delivered_shares == 0:
        return 0.0
    return spec.scale * float(np.sqrt(delivered_shares / spec.n_shares))
