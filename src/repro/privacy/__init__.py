"""Differential-privacy substrate: Laplace mechanism, noise-shares, budget
accounting, budget-distribution strategies and probabilistic-DP accounting."""

from .budget import BudgetSpend, PrivacyAccountant, compose_parallel, compose_sequential
from .laplace import (
    SensitivityModel,
    expected_absolute_noise,
    laplace_mechanism,
    laplace_tail_probability,
    sample_laplace,
)
from .noise_shares import (
    NoiseShareSpec,
    draw_noise_share,
    effective_scale_with_dropouts,
    reconstructed_variance,
    share_variance,
    slot_magnitude_bound,
    sum_of_shares,
)
from .probabilistic import (
    ProbabilisticGuarantee,
    cycles_for_target_delta,
    delta_from_cycles,
    effective_epsilon,
    gossip_relative_error,
    guarantee_for_run,
)
from .strategies import (
    AdaptiveBudgetStrategy,
    BudgetStrategy,
    GeometricBudgetStrategy,
    UniformBudgetStrategy,
    make_budget_strategy,
)

__all__ = [
    "SensitivityModel",
    "laplace_mechanism",
    "sample_laplace",
    "laplace_tail_probability",
    "expected_absolute_noise",
    "NoiseShareSpec",
    "draw_noise_share",
    "sum_of_shares",
    "share_variance",
    "reconstructed_variance",
    "effective_scale_with_dropouts",
    "slot_magnitude_bound",
    "PrivacyAccountant",
    "BudgetSpend",
    "compose_sequential",
    "compose_parallel",
    "BudgetStrategy",
    "UniformBudgetStrategy",
    "GeometricBudgetStrategy",
    "AdaptiveBudgetStrategy",
    "make_budget_strategy",
    "ProbabilisticGuarantee",
    "gossip_relative_error",
    "delta_from_cycles",
    "effective_epsilon",
    "guarantee_for_run",
    "cycles_for_target_delta",
]
