"""Privacy-budget accounting (sequential self-composition).

Every Chiaroscuro iteration discloses one differentially-private release, so
the total privacy level of a run is the sum of the per-iteration ε values
(self-composition property recalled in Section II.A of the paper).  The
:class:`PrivacyAccountant` enforces that the sum never exceeds the configured
budget, records each spend with its context, and reports the realised global
guarantee — including the probabilistic slack δ caused by the gossip
approximation (see :mod:`repro.privacy.probabilistic`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from .._validation import check_non_negative_float, check_positive_float
from ..exceptions import BudgetExhaustedError, PrivacyError


@dataclass(frozen=True)
class BudgetSpend:
    """One recorded disclosure: how much ε it consumed and why."""

    epsilon: float
    label: str
    details: dict[str, Any] = field(default_factory=dict)


class PrivacyAccountant:
    """Tracks and enforces the ε budget of a run.

    Parameters
    ----------
    total_epsilon:
        The overall budget; the accountant refuses any spend that would push
        the cumulative total beyond it (up to a tiny numerical tolerance).
    delta_slack:
        Probabilistic slack of the guarantee, reported alongside ε (the
        accountant does not subdivide δ: the gossip analysis produces a
        single per-run value).
    """

    #: Relative numerical tolerance when comparing spends against the budget.
    _TOLERANCE = 1e-9

    def __init__(self, total_epsilon: float, delta_slack: float = 0.0) -> None:
        self.total_epsilon = check_positive_float(total_epsilon, "total_epsilon")
        self.delta_slack = check_non_negative_float(delta_slack, "delta_slack")
        self._spends: list[BudgetSpend] = []

    # ------------------------------------------------------------------ queries
    @property
    def spent_epsilon(self) -> float:
        """Total ε consumed so far."""
        return float(sum(spend.epsilon for spend in self._spends))

    @property
    def remaining_epsilon(self) -> float:
        """Budget still available (never negative)."""
        return max(0.0, self.total_epsilon - self.spent_epsilon)

    @property
    def n_spends(self) -> int:
        """Number of recorded disclosures."""
        return len(self._spends)

    def __iter__(self) -> Iterator[BudgetSpend]:
        return iter(self._spends)

    def can_spend(self, epsilon: float) -> bool:
        """Whether a spend of *epsilon* fits in the remaining budget."""
        epsilon = check_positive_float(epsilon, "epsilon")
        limit = self.total_epsilon * (1.0 + self._TOLERANCE)
        return self.spent_epsilon + epsilon <= limit

    # ------------------------------------------------------------------ commands
    def spend(self, epsilon: float, label: str = "", **details: Any) -> BudgetSpend:
        """Record a disclosure of *epsilon*; raise if the budget is exceeded."""
        epsilon = check_positive_float(epsilon, "epsilon")
        if not self.can_spend(epsilon):
            raise BudgetExhaustedError(
                f"spending ε={epsilon:.6g} would exceed the budget "
                f"(spent {self.spent_epsilon:.6g} of {self.total_epsilon:.6g})"
            )
        spend = BudgetSpend(epsilon=epsilon, label=label, details=dict(details))
        self._spends.append(spend)
        return spend

    def reset(self) -> None:
        """Forget every recorded spend (used when replaying configurations)."""
        self._spends.clear()

    # ------------------------------------------------------------------ reporting
    def report(self) -> dict[str, Any]:
        """Summary of the realised guarantee, suitable for the execution log."""
        return {
            "total_epsilon": self.total_epsilon,
            "spent_epsilon": self.spent_epsilon,
            "remaining_epsilon": self.remaining_epsilon,
            "delta_slack": self.delta_slack,
            "n_spends": self.n_spends,
            "spends": [
                {"epsilon": spend.epsilon, "label": spend.label, **spend.details}
                for spend in self._spends
            ],
        }


def compose_sequential(epsilons: list[float]) -> float:
    """Sequential composition: the total ε is the sum of the parts."""
    if not epsilons:
        return 0.0
    if any(epsilon <= 0 for epsilon in epsilons):
        raise PrivacyError("every ε in a composition must be > 0")
    return float(sum(epsilons))


def compose_parallel(epsilons: list[float]) -> float:
    """Parallel composition over disjoint subsets: the total ε is the maximum.

    Chiaroscuro's per-iteration release is *not* parallel-composable across
    iterations (the same individuals participate every time); this helper is
    provided for analyses that partition the population.
    """
    if not epsilons:
        return 0.0
    if any(epsilon <= 0 for epsilon in epsilons):
        raise PrivacyError("every ε in a composition must be > 0")
    return float(max(epsilons))
