"""Privacy-budget distribution strategies (quality-enhancing heuristic #1).

Chiaroscuro "acts on the quality of the sequence of centroids through smart
privacy budget distribution strategies" (Section II.B).  The intuition: early
k-means iterations only need a rough idea of where the centroids are, while
the last iterations fix the final profiles, so giving later iterations a
larger share of the ε budget (hence less noise) improves final quality at an
unchanged total privacy level.

Three strategies are provided:

* :class:`UniformBudgetStrategy` — every iteration gets ε / max_iterations;
* :class:`GeometricBudgetStrategy` — iteration budgets follow a geometric
  progression of ratio r > 1 (later iterations get more);
* :class:`AdaptiveBudgetStrategy` — after each iteration the remaining budget
  is re-planned over the *expected* number of remaining iterations, estimated
  from the observed centroid displacement (fast convergence ⇒ fewer expected
  iterations ⇒ larger per-iteration shares).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .._validation import check_positive_float, check_positive_int
from ..exceptions import PrivacyError


class BudgetStrategy(ABC):
    """Decides how much ε each iteration may spend."""

    #: Registry name used in configurations.
    name: str = "abstract"

    def __init__(self, total_epsilon: float, max_iterations: int) -> None:
        self.total_epsilon = check_positive_float(total_epsilon, "total_epsilon")
        self.max_iterations = check_positive_int(max_iterations, "max_iterations")

    @abstractmethod
    def epsilon_for_iteration(self, iteration: int, remaining_epsilon: float,
                              progress: float | None = None) -> float:
        """Budget for the 0-based *iteration*.

        Parameters
        ----------
        iteration:
            0-based iteration index (< ``max_iterations``).
        remaining_epsilon:
            Budget not yet spent (the strategy must never return more).
        progress:
            Optional convergence signal in [0, 1]; 1 means the centroids did
            not move at all during the previous iteration.  Only the adaptive
            strategy uses it.
        """

    @abstractmethod
    def minimum_iteration_epsilon(self) -> float:
        """Smallest *positive* budget the strategy can ever grant.

        Every strategy returns either 0 (stop: budget exhausted) or at least
        this much, whatever the runtime spending pattern.  The packed cipher
        layer sizes its slots from the worst-case Laplace scale, i.e. from
        this bound, so the guarantee must hold unconditionally.
        """

    def _check_iteration(self, iteration: int) -> None:
        if not 0 <= iteration < self.max_iterations:
            raise PrivacyError(
                f"iteration {iteration} outside [0, {self.max_iterations})"
            )

    def schedule(self) -> list[float]:
        """The planned per-iteration budgets, assuming every iteration runs.

        For the adaptive strategy this is the no-signal plan (uniform over the
        remaining iterations at each step).
        """
        remaining = self.total_epsilon
        planned = []
        for iteration in range(self.max_iterations):
            epsilon = self.epsilon_for_iteration(iteration, remaining)
            planned.append(epsilon)
            remaining -= epsilon
        return planned


class UniformBudgetStrategy(BudgetStrategy):
    """Every iteration receives the same share ε / max_iterations."""

    name = "uniform"

    def epsilon_for_iteration(self, iteration: int, remaining_epsilon: float,
                              progress: float | None = None) -> float:
        self._check_iteration(iteration)
        share = self.total_epsilon / self.max_iterations
        return float(min(share, max(remaining_epsilon, 0.0)))

    def minimum_iteration_epsilon(self) -> float:
        # Iterations only ever spend full shares, so the remainder can never
        # fall strictly between 0 and one share (up to float dust).
        return 0.5 * self.total_epsilon / self.max_iterations


class GeometricBudgetStrategy(BudgetStrategy):
    """Per-iteration budgets follow a geometric progression.

    With ratio r and T iterations, iteration t receives
    ε * r^t * (r - 1) / (r^T - 1); r > 1 favours later iterations, r < 1
    favours earlier ones, and the limit r → 1 recovers the uniform strategy.
    """

    name = "geometric"

    def __init__(self, total_epsilon: float, max_iterations: int, ratio: float = 1.3) -> None:
        super().__init__(total_epsilon, max_iterations)
        self.ratio = check_positive_float(ratio, "ratio")

    def _weights(self) -> np.ndarray:
        if abs(self.ratio - 1.0) < 1e-12:
            return np.full(self.max_iterations, 1.0 / self.max_iterations)
        powers = np.power(self.ratio, np.arange(self.max_iterations, dtype=float))
        return powers / powers.sum()

    def epsilon_for_iteration(self, iteration: int, remaining_epsilon: float,
                              progress: float | None = None) -> float:
        self._check_iteration(iteration)
        share = float(self.total_epsilon * self._weights()[iteration])
        return float(min(share, max(remaining_epsilon, 0.0)))

    def minimum_iteration_epsilon(self) -> float:
        # Same invariant as the uniform strategy, with the smallest weight.
        return 0.5 * float(self.total_epsilon * self._weights().min())


class AdaptiveBudgetStrategy(BudgetStrategy):
    """Re-plans the remaining budget from the observed convergence progress.

    The expected number of remaining iterations is estimated as
    ``ceil((1 - progress) * (max_iterations - iteration))`` (at least 1); the
    remaining budget is split uniformly over that estimate.  When no progress
    signal is available the strategy behaves like a uniform split of the
    remaining budget over the remaining iterations.
    """

    name = "adaptive"

    def __init__(self, total_epsilon: float, max_iterations: int,
                 minimum_fraction: float = 0.25) -> None:
        super().__init__(total_epsilon, max_iterations)
        if not 0.0 < minimum_fraction <= 1.0:
            raise PrivacyError(f"minimum_fraction must be in (0, 1], got {minimum_fraction}")
        self.minimum_fraction = minimum_fraction

    def epsilon_for_iteration(self, iteration: int, remaining_epsilon: float,
                              progress: float | None = None) -> float:
        self._check_iteration(iteration)
        remaining = max(remaining_epsilon, 0.0)
        floor = self.minimum_fraction * self.total_epsilon / self.max_iterations
        if remaining < floor:
            # Dust budget: a sub-floor grant would buy one iteration of
            # astronomically-scaled (useless) noise — and would break the
            # minimum_iteration_epsilon() guarantee the packed cipher layer
            # sizes its slots from.  Declare the budget exhausted instead.
            return 0.0
        remaining_iterations = self.max_iterations - iteration
        if progress is not None:
            progress = float(np.clip(progress, 0.0, 1.0))
            expected = int(np.ceil((1.0 - progress) * remaining_iterations))
            expected = max(1, min(remaining_iterations, expected))
        else:
            expected = remaining_iterations
        share = remaining / expected
        return float(min(max(share, floor), remaining))

    def minimum_iteration_epsilon(self) -> float:
        return self.minimum_fraction * self.total_epsilon / self.max_iterations


def make_budget_strategy(
    name: str,
    total_epsilon: float,
    max_iterations: int,
    geometric_ratio: float = 1.3,
) -> BudgetStrategy:
    """Factory mapping a configuration string to a strategy instance."""
    if name == "uniform":
        return UniformBudgetStrategy(total_epsilon, max_iterations)
    if name == "geometric":
        return GeometricBudgetStrategy(total_epsilon, max_iterations, ratio=geometric_ratio)
    if name == "adaptive":
        return AdaptiveBudgetStrategy(total_epsilon, max_iterations)
    raise PrivacyError(f"unknown budget strategy {name!r}")
