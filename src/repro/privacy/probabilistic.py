"""Probabilistic differential-privacy accounting for gossip approximation.

Chiaroscuro satisfies a *probabilistic variant* of ε-differential privacy
(paper, Section II.A): the noise added to a disclosed aggregate is built from
noise-shares that are themselves summed by an *approximate* gossip protocol,
so the realised noise can deviate slightly from the exact Laplace sample.
With probability at least 1 - δ the relative gossip error stays below a bound
ρ that decreases exponentially with the number of gossip cycles (Kempe,
Dobra, Gehrke, FOCS 2003); conditioned on that event the mechanism is
ε'-differentially private with ε' = ε / (1 - ρ).

This module turns the gossip parameters into the (ε', δ) pair reported by the
privacy accountant, and inversely computes how many cycles are needed to meet
a target slack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_fraction_open, check_positive_float, check_positive_int
from ..exceptions import PrivacyError


@dataclass(frozen=True)
class ProbabilisticGuarantee:
    """The realised guarantee: ε' with probability ≥ 1 - δ."""

    epsilon: float
    effective_epsilon: float
    delta: float
    relative_error_bound: float

    def as_dict(self) -> dict[str, float]:
        """Plain dictionary view (for reports and logs)."""
        return {
            "epsilon": self.epsilon,
            "effective_epsilon": self.effective_epsilon,
            "delta": self.delta,
            "relative_error_bound": self.relative_error_bound,
        }


def gossip_relative_error(cycles: int, contraction: float = 0.5) -> float:
    """Deterministic bound on the relative mass-diffusion error after *cycles*.

    Push-sum style protocols contract the diffusion error by a constant factor
    per cycle (in expectation, 1/2 for uniform random peer selection), so the
    relative error after c cycles is bounded by ``contraction ** cycles``.
    """
    check_positive_int(cycles, "cycles")
    contraction = check_fraction_open(contraction, "contraction")
    return float(contraction**cycles)


def delta_from_cycles(cycles: int, n_participants: int, contraction: float = 0.5) -> float:
    """Probability that some participant's gossip error exceeds the bound.

    A union bound over participants of the per-node exponential tail: each
    node's relative error exceeds contraction^cycles with probability at most
    contraction^cycles, so δ ≤ min(1, n · contraction^(cycles)).
    """
    check_positive_int(n_participants, "n_participants")
    error = gossip_relative_error(cycles, contraction)
    return float(min(1.0, n_participants * error))


def effective_epsilon(epsilon: float, relative_error: float) -> float:
    """ε' = ε / (1 - ρ): the privacy level conditioned on the gossip error event.

    When the gossip sum under-delivers a fraction ρ of the noise mass, the
    realised Laplace scale shrinks by (1 - ρ) and the exponent of the privacy
    loss grows by 1 / (1 - ρ).
    """
    check_positive_float(epsilon, "epsilon")
    if not 0.0 <= relative_error < 1.0:
        raise PrivacyError(f"relative_error must be in [0, 1), got {relative_error}")
    return float(epsilon / (1.0 - relative_error))


def guarantee_for_run(
    epsilon: float,
    cycles: int,
    n_participants: int,
    contraction: float = 0.5,
) -> ProbabilisticGuarantee:
    """Assemble the probabilistic guarantee achieved by a run."""
    error = gossip_relative_error(cycles, contraction)
    if error >= 1.0:
        raise PrivacyError("gossip error bound must be below 1; run more cycles")
    return ProbabilisticGuarantee(
        epsilon=float(epsilon),
        effective_epsilon=effective_epsilon(epsilon, error),
        delta=delta_from_cycles(cycles, n_participants, contraction),
        relative_error_bound=error,
    )


def cycles_for_target_delta(
    target_delta: float, n_participants: int, contraction: float = 0.5
) -> int:
    """Smallest number of gossip cycles achieving δ ≤ target_delta.

    Inverts the union bound of :func:`delta_from_cycles`; used to pick the
    ``cycles_per_aggregation`` configuration value from a target slack.
    """
    target_delta = check_fraction_open(target_delta, "target_delta")
    check_positive_int(n_participants, "n_participants")
    contraction = check_fraction_open(contraction, "contraction")
    cycles = int(np.ceil(np.log(target_delta / n_participants) / np.log(contraction)))
    return max(1, cycles)
