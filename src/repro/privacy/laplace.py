"""The Laplace mechanism and the sensitivity model used by Chiaroscuro.

At every iteration the protocol discloses, for each of the *k* clusters, the
(perturbed) sum of the member time-series and the (perturbed) member count.
Under the add/remove-one-individual neighbouring relation, one participant
influences exactly one cluster: its series (clipped point-wise to
``value_bound``) moves one cluster sum by at most ``series_length *
value_bound`` in L1 norm and one count by 1.  The L1 sensitivity of the full
per-iteration release is therefore ``series_length * value_bound +
count_bound`` and the Laplace mechanism with scale ``sensitivity / epsilon``
applied independently to every released coordinate guarantees
ε-differential privacy for that iteration; iterations compose sequentially
(see :mod:`repro.privacy.budget`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_float, check_positive_int
from ..exceptions import PrivacyError


@dataclass(frozen=True)
class SensitivityModel:
    """L1 sensitivity of one Chiaroscuro iteration's release.

    Attributes
    ----------
    series_length:
        Number of points per time-series (and per cluster-sum vector).
    value_bound:
        Public clipping bound on the absolute value of any series point.
    count_bound:
        Contribution of one individual to the cluster counts (1 by
        definition; kept explicit for clarity and for variants).
    """

    series_length: int
    value_bound: float = 1.0
    count_bound: float = 1.0

    def __post_init__(self) -> None:
        check_positive_int(self.series_length, "series_length")
        check_positive_float(self.value_bound, "value_bound")
        check_positive_float(self.count_bound, "count_bound")

    @property
    def sum_sensitivity(self) -> float:
        """L1 sensitivity of the per-cluster sum vectors."""
        return self.series_length * self.value_bound

    @property
    def count_sensitivity(self) -> float:
        """L1 sensitivity of the per-cluster counts."""
        return self.count_bound

    @property
    def total_sensitivity(self) -> float:
        """L1 sensitivity of the complete per-iteration release."""
        return self.sum_sensitivity + self.count_sensitivity

    def laplace_scale(self, epsilon: float) -> float:
        """Laplace scale b = sensitivity / ε for a per-iteration budget ε."""
        epsilon = check_positive_float(epsilon, "epsilon")
        return self.total_sensitivity / epsilon


def sample_laplace(
    scale: float, size: int | tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Sample i.i.d. Laplace(0, scale) noise of the given shape."""
    scale = check_positive_float(scale, "scale")
    return rng.laplace(loc=0.0, scale=scale, size=size)


def laplace_mechanism(
    values: np.ndarray,
    sensitivity: float,
    epsilon: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Centralised Laplace mechanism: add Laplace(sensitivity/ε) noise to *values*.

    Used by the centralised DP baseline; the distributed protocol builds the
    same noise from per-participant shares (:mod:`repro.privacy.noise_shares`).
    """
    values = np.asarray(values, dtype=float)
    sensitivity = check_positive_float(sensitivity, "sensitivity")
    epsilon = check_positive_float(epsilon, "epsilon")
    scale = sensitivity / epsilon
    return values + rng.laplace(loc=0.0, scale=scale, size=values.shape)


def laplace_tail_probability(magnitude: float, scale: float) -> float:
    """P(|X| > magnitude) for X ~ Laplace(0, scale).

    Used when reporting the expected distortion of the perturbed centroids
    and when sizing the probabilistic slack of the DP guarantee.
    """
    if magnitude < 0:
        raise PrivacyError(f"magnitude must be >= 0, got {magnitude}")
    scale = check_positive_float(scale, "scale")
    return float(np.exp(-magnitude / scale))


def expected_absolute_noise(scale: float) -> float:
    """E[|X|] = scale for X ~ Laplace(0, scale)."""
    return check_positive_float(scale, "scale")
