"""Offline precomputation service: pools, tables and persisted pool files.

Chiaroscuro's crypto cost splits into two phases.  The *offline* phase is
input-independent: blinder exponentiations ``r^{n^s} mod n^{s+1}`` that fill
the :class:`~repro.crypto.fastmath.BlinderPool`, encryptions of zero for
re-randomisation (in Damgård–Jurik an encryption of zero *is* a blinder:
``(1+n)^0 · r^{n^s} = r^{n^s}``), and windowed
:class:`~repro.crypto.fastmath.FixedBaseTable` builds for recurring bases.
The *online* phase is the protocol hot path, where every pooled operation
costs one bigint multiplication.

:class:`PrecomputationService` generalises the pool the fastmath layer
already ships: one object that owns the blinder pool, a separate
encryptions-of-zero FIFO, a cache of fixed-base tables, cost-model-driven
refill planning, and **persisted pool files** so the offline phase of one
process can be spent before the online phase of the next even starts.

Pool files are consumable, single-use artifacts:

* :meth:`PrecomputationService.save` writes *freshly generated* blinders —
  never blinders that were (or could later be) served from the in-memory
  pool, because two processes encrypting with the same blinder produce
  ciphertexts whose quotient reveals the plaintext difference.
* :meth:`PrecomputationService.load` validates the format version, the key
  fingerprint (a pool generated under a different key is useless *and*
  unsafe to confuse) and an optional staleness bound, then **deletes the
  file before returning** so no second process can load the same blinders.

The service keeps an ``offline_seconds`` accumulator: every second spent
generating pooled material is charged to the offline phase, which is what
the :mod:`~repro.analysis.costs` phase split reports.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable

from ..exceptions import CryptoError
from .fastmath import BlinderPool, FixedBaseTable, PrecomputedKey, plan_pool_batch
from .math_utils import random_coprime

#: Version byte of the persisted pool-file format.
POOL_FILE_VERSION = 1

#: Hard cap on pooled values read back from one file (pre-allocation bound).
_MAX_POOL_FILE_VALUES = 1 << 16


class PoolFileError(CryptoError):
    """A persisted pool file is unreadable, stale, or for the wrong key."""


def key_fingerprint(precomputed: PrecomputedKey) -> str:
    """Stable identity of the key a pool was generated under.

    Covers exactly the public parameters that determine the blinder group
    (the modulus ``n`` and the degree ``s``); two pools interoperate if and
    only if their fingerprints match.
    """
    n_bytes = precomputed.n.to_bytes((precomputed.n.bit_length() + 7) // 8, "big")
    digest = hashlib.sha256()
    digest.update(b"chiaroscuro-pool:")
    digest.update(precomputed.s.to_bytes(2, "big"))
    digest.update(n_bytes)
    return digest.hexdigest()


class PrecomputationService:
    """Background filler and persistence layer for precomputed crypto state.

    Owns a :class:`BlinderPool` (created on demand, or adopt an existing
    one so backend and service share state), an encryptions-of-zero FIFO
    and a cache of :class:`FixedBaseTable` instances keyed by
    ``(base, max_exponent_bits, window)``.  All mutation is thread-safe;
    generation time is accumulated in :attr:`offline_seconds`.
    """

    def __init__(
        self,
        precomputed: PrecomputedKey,
        pool: BlinderPool | None = None,
        batch_size: int = 32,
        rng: Callable[[int], int] | None = None,
    ) -> None:
        self.precomputed = precomputed
        self.pool = pool if pool is not None else BlinderPool(
            precomputed, batch_size=batch_size, rng=rng
        )
        self._random_coprime = rng if rng is not None else random_coprime
        self._zeros: deque[int] = deque()
        self._tables: dict[tuple[int, int, int], FixedBaseTable] = {}
        self._lock = threading.Lock()
        #: Seconds this service has spent generating pooled material — the
        #: measured offline phase of this process.
        self.offline_seconds = 0.0
        self.zeros_generated = 0
        self.zeros_served = 0

    # ------------------------------------------------------------------ identity
    @property
    def fingerprint(self) -> str:
        """Key fingerprint every pool file of this service carries."""
        return key_fingerprint(self.precomputed)

    # ------------------------------------------------------------------ generation
    def _fresh_zero(self) -> int:
        """One fresh encryption of zero: ``r^{n^s} mod n^{s+1}``."""
        randomness = self._random_coprime(self.precomputed.n)
        return self.precomputed.crt_pow(randomness, self.precomputed.n_to_s)

    def plan_refill(self, expected_per_round: int) -> int:
        """Cost-model-driven batch size (see :func:`plan_pool_batch`)."""
        return plan_pool_batch(expected_per_round)

    def refill(self, blinders: int | None = None, zeros: int = 0) -> None:
        """Generate pooled material now, charging the time to the offline phase.

        ``blinders=None`` refills one pool batch; pass explicit counts to
        top up ahead of a known workload (see :meth:`plan_refill`).
        """
        start = time.perf_counter()
        self.pool.refill(blinders)
        if zeros:
            fresh = [self._fresh_zero() for _ in range(zeros)]
            with self._lock:
                self._zeros.extend(fresh)
                self.zeros_generated += len(fresh)
        self.offline_seconds += time.perf_counter() - start

    def take_zero(self) -> int:
        """Pop the oldest pooled encryption of zero, generating on exhaustion."""
        with self._lock:
            if self._zeros:
                self.zeros_served += 1
                return self._zeros.popleft()
        start = time.perf_counter()
        fresh = self._fresh_zero()
        self.offline_seconds += time.perf_counter() - start
        with self._lock:
            self.zeros_served += 1
        return fresh

    def zeros_available(self) -> int:
        """Number of pooled encryptions of zero currently held."""
        with self._lock:
            return len(self._zeros)

    def table_for(
        self, base: int, max_exponent_bits: int, window: int = 5
    ) -> FixedBaseTable:
        """A cached fixed-base table for a recurring base (built once)."""
        key = (int(base), int(max_exponent_bits), int(window))
        with self._lock:
            table = self._tables.get(key)
        if table is not None:
            return table
        start = time.perf_counter()
        table = FixedBaseTable(
            base, self.precomputed.modulus, max_exponent_bits, window=window
        )
        self.offline_seconds += time.perf_counter() - start
        with self._lock:
            return self._tables.setdefault(key, table)

    def start_background_refill(self, low_water: int | None = None) -> None:
        """Start the pool's refill worker (see :class:`BlinderPool`)."""
        self.pool.start_background_refill(low_water)

    def stop_background_refill(self) -> None:
        """Stop the pool's refill worker; idempotent."""
        self.pool.stop_background_refill()

    # ------------------------------------------------------------------ persistence
    def save(self, path: str | os.PathLike, blinders: int, zeros: int = 0) -> dict:
        """Write a pool file holding *freshly generated* material.

        The values written are generated here and now — never taken from
        the in-memory pool, so nothing this process might serve later can
        collide with what the loading process serves (see the module
        docstring for why shared blinders are a linkability break).  The
        write is atomic (temp file + rename); generation time is charged
        to the offline phase.  Returns a summary dictionary.
        """
        if blinders < 0 or zeros < 0:
            raise PoolFileError("pool-file counts must be non-negative")
        if blinders + zeros > _MAX_POOL_FILE_VALUES:
            raise PoolFileError(
                f"pool file of {blinders + zeros} values exceeds "
                f"{_MAX_POOL_FILE_VALUES}"
            )
        start = time.perf_counter()
        fresh_blinders = [self._fresh_zero() for _ in range(blinders)]
        fresh_zeros = [self._fresh_zero() for _ in range(zeros)]
        self.offline_seconds += time.perf_counter() - start
        payload = {
            "version": POOL_FILE_VERSION,
            "key": {
                "n": format(self.precomputed.n, "x"),
                "s": self.precomputed.s,
                "fingerprint": self.fingerprint,
            },
            "created_unix": time.time(),
            "blinders": [format(value, "x") for value in fresh_blinders],
            "zeros": [format(value, "x") for value in fresh_zeros],
        }
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        temporary = target.with_name(target.name + f".tmp.{os.getpid()}")
        with temporary.open("w") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        temporary.replace(target)
        return {
            "path": str(target),
            "blinders": len(fresh_blinders),
            "zeros": len(fresh_zeros),
            "fingerprint": self.fingerprint,
        }

    def load(self, path: str | os.PathLike, max_age_seconds: float | None = None) -> dict:
        """Consume a pool file: validate, absorb, **delete**.

        Raises :class:`PoolFileError` on a bad version, a fingerprint that
        does not match this service's key, or a file older than
        *max_age_seconds*.  On success the file is removed before the
        method returns, so no other process can absorb the same blinders,
        and the values are appended to the pool / zeros FIFO.  Returns a
        summary dictionary with the absorbed counts.
        """
        source = Path(path)
        try:
            with source.open() as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise PoolFileError(f"cannot read pool file {source}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise PoolFileError(f"corrupt pool file {source}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != POOL_FILE_VERSION:
            raise PoolFileError(
                f"pool file {source} has unsupported version "
                f"{payload.get('version') if isinstance(payload, dict) else '?'}"
            )
        key_info = payload.get("key", {})
        if key_info.get("fingerprint") != self.fingerprint:
            raise PoolFileError(
                f"pool file {source} was generated under a different key "
                f"(file {key_info.get('fingerprint')!r}, ours {self.fingerprint!r})"
            )
        created = float(payload.get("created_unix", 0.0))
        age = time.time() - created
        if max_age_seconds is not None and age > max_age_seconds:
            raise PoolFileError(
                f"pool file {source} is {age:.0f}s old "
                f"(staleness bound {max_age_seconds:.0f}s)"
            )
        raw_blinders = payload.get("blinders", [])
        raw_zeros = payload.get("zeros", [])
        if len(raw_blinders) + len(raw_zeros) > _MAX_POOL_FILE_VALUES:
            raise PoolFileError(f"pool file {source} declares too many values")
        modulus = self.precomputed.modulus
        try:
            blinders = [int(value, 16) for value in raw_blinders]
            zeros = [int(value, 16) for value in raw_zeros]
        except (TypeError, ValueError) as exc:
            raise PoolFileError(f"corrupt pool values in {source}: {exc}") from exc
        for value in blinders + zeros:
            if not 0 < value < modulus:
                raise PoolFileError(f"pool value outside the ciphertext group in {source}")
        # Consume before absorbing: once deleted, these blinders exist only
        # in this process.
        source.unlink()
        self.pool.preload(blinders)
        if zeros:
            with self._lock:
                self._zeros.extend(zeros)
                self.zeros_generated += len(zeros)
        return {
            "path": str(source),
            "blinders": len(blinders),
            "zeros": len(zeros),
            "age_seconds": age,
        }

    def adopt_pool_file(
        self,
        path: str | os.PathLike,
        refill_blinders: int | None = None,
        max_age_seconds: float | None = None,
    ) -> dict:
        """The one-call pool-file protocol: load-consume, then save fresh.

        When the file exists its contents are absorbed (and the file is
        deleted); either way a fresh batch is generated and written for
        the *next* process.  This keeps a pool file continuously warm
        across a sequence of runs while every run still serves distinct
        blinders.  Returns ``{"loaded": ..., "saved": ...}`` summaries.

        An unusable file — wrong key, stale, corrupt — is a cold start,
        not an error: adopting a path means owning it, and a run whose key
        does not match the file (every CLI run generates a fresh keypair)
        would otherwise fail forever on a pool it can never absorb.  The
        absorption is skipped, the reason lands in the ``"skipped"`` key
        of the summary, and the fresh batch replaces the unusable file.
        """
        loaded = None
        skipped = None
        if Path(path).exists():
            try:
                loaded = self.load(path, max_age_seconds=max_age_seconds)
            except PoolFileError as exc:
                skipped = str(exc)
        count = refill_blinders if refill_blinders is not None else self.pool.batch_size
        saved = self.save(path, blinders=count)
        summary = {"loaded": loaded, "saved": saved}
        if skipped is not None:
            summary["skipped"] = skipped
        return summary
