"""Canonical binary wire encoding of the cryptographic payloads.

The simulation historically shipped Python object references between nodes
and *estimated* message sizes with a formula; this module gives every
cryptographic value an actual, versioned byte representation so that the
transport layer can move real frames and the cost analysis can report
*measured* bytes (see :mod:`repro.gossip.messages` for the framed message
types built on top of these primitives).

Design rules, chosen so that encodings are deterministic, bit-exact across
backends and safe to decode from untrusted bytes:

* **Varints** (unsigned LEB128) encode small non-negative integers — lengths,
  counts, indices, exponents.  Encodings are *canonical*: a redundant
  trailing zero continuation byte is rejected, so every integer has exactly
  one byte representation.
* **Bigints** (varint byte-length + minimal big-endian magnitude) encode
  unbounded non-negative integers — homomorphic weights, public moduli.
  The magnitude must not have a leading zero byte (canonical again).
* **Ciphertexts** are encoded *fixed-width*: every ciphertext of a vector
  occupies exactly ``ciphertext_bytes`` big-endian bytes, the width of the
  backend's ciphertext space.  This is what a real deployment sends (elements
  of Z_{n^{s+1}} have a fixed size; a value-dependent width would leak
  information and defeat byte-accurate cost accounting).
* **Floats** are IEEE-754 big-endian doubles, so cleartext gossip payloads
  round-trip bit-exactly.
* Every decoding error raises :class:`~repro.exceptions.WireFormatError`
  and nothing else; decoders validate declared sizes *before* allocating,
  so hostile length fields cannot balloon memory.

:data:`WIRE_VERSION` stamps every frame.  Changing any encoding rule in an
incompatible way requires bumping it (and committing a new golden vector
file ``tests/vectors/wire_v<N>.json`` — existing vector files are immutable,
which CI enforces).
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from ..exceptions import ValidationError, WireFormatError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .backends import CipherBackend, EncryptedVector, PartialVectorDecryption

#: Version byte stamped on every frame (and the suffix of the golden vector
#: file name).  Bump on any incompatible encoding change.
WIRE_VERSION = 1

#: Wire knob values accepted everywhere (configuration, CLI, factories):
#: ``"auto"`` transports serialized byte frames, ``"off"`` reproduces the
#: historical reference-passing simulation with modelled sizes.
WIRE_CHOICES = ("auto", "off")

#: Fixed frame-envelope bytes outside the body: magic (2) + version (1) +
#: type (1) + CRC32 (4).  The body-length varint adds 1-4 more depending on
#: the body size.  (The framing itself lives in
#: :mod:`repro.gossip.messages`; the constant sits here, in the leaf
#: module, so the cost model can import it without the gossip package.)
FRAME_FIXED_OVERHEAD_BYTES = 8

#: Hard decoder limits.  Anything declaring more raises
#: :class:`WireFormatError` before any allocation happens.
MAX_FRAME_BYTES = 1 << 26  # 64 MiB per frame
MAX_VECTOR_COMPONENTS = 1 << 20  # logical coordinates per vector
MAX_CIPHERTEXT_BYTES = 1 << 16  # bytes per ciphertext (32k-bit moduli)
MAX_NAME_BYTES = 64  # backend-name strings
MAX_VARINT_BYTES = 10  # varints hold values < 2**64

_VARINT_LIMIT = 1 << 64


def normalize_wire(wire: str) -> str:
    """Validate and canonicalise a ``wire`` knob value (``"auto"``/``"off"``)."""
    if isinstance(wire, str) and wire in WIRE_CHOICES:
        return wire
    raise ValidationError(
        f"invalid wire option {wire!r}: expected one of {WIRE_CHOICES}"
    )


def wire_ciphertext_bytes(backend: "CipherBackend") -> int:
    """Fixed on-wire width of one of *backend*'s ciphertexts, in bytes."""
    return (backend.ciphertext_bits + 7) // 8


# ---------------------------------------------------------------------------
# primitive writers (appending to a bytearray)
# ---------------------------------------------------------------------------

def varint_size(value: int) -> int:
    """Number of bytes :func:`write_varint` will use for *value*."""
    if not 0 <= value < _VARINT_LIMIT:
        raise WireFormatError(f"varint out of range: {value}")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def write_varint(out: bytearray, value: int) -> None:
    """Append the canonical unsigned-LEB128 encoding of *value*."""
    if not 0 <= value < _VARINT_LIMIT:
        raise WireFormatError(f"varint out of range: {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def write_bigint(out: bytearray, value: int,
                 max_bytes: int = MAX_CIPHERTEXT_BYTES) -> None:
    """Append a length-prefixed minimal big-endian non-negative integer.

    *max_bytes* mirrors the decoder's :meth:`WireReader.read_bigint` cap, so
    a serializable integer is always decodable.
    """
    value = int(value)
    if value < 0:
        raise WireFormatError(f"bigints are non-negative, got {value}")
    raw = value.to_bytes((value.bit_length() + 7) // 8, "big") if value else b""
    if len(raw) > max_bytes:
        raise WireFormatError(
            f"bigint of {len(raw)} bytes exceeds the wire limit {max_bytes}"
        )
    write_varint(out, len(raw))
    out.extend(raw)


def write_string(out: bytearray, text: str) -> None:
    """Append a length-prefixed UTF-8 string (short identifiers only)."""
    raw = text.encode("utf-8")
    if len(raw) > MAX_NAME_BYTES:
        raise WireFormatError(f"string too long for the wire: {len(raw)} bytes")
    write_varint(out, len(raw))
    out.extend(raw)


def write_bool(out: bytearray, value: bool) -> None:
    """Append a strict one-byte boolean (0x00 or 0x01)."""
    out.append(0x01 if value else 0x00)


def write_float(out: bytearray, value: float) -> None:
    """Append an IEEE-754 big-endian double (bit-exact round-trip)."""
    out.extend(struct.pack(">d", value))


def write_ciphertext(out: bytearray, value: int, width: int) -> None:
    """Append one ciphertext as exactly *width* big-endian bytes."""
    value = int(value)
    if value < 0:
        raise WireFormatError(f"ciphertexts are non-negative, got {value}")
    try:
        out.extend(value.to_bytes(width, "big"))
    except OverflowError as exc:
        raise WireFormatError(
            f"ciphertext needs {(value.bit_length() + 7) // 8} bytes but the "
            f"declared width is {width}"
        ) from exc


# ---------------------------------------------------------------------------
# reader
# ---------------------------------------------------------------------------

class WireReader:
    """Sequential decoder over one byte buffer.

    Every accessor validates bounds and canonicality and raises
    :class:`WireFormatError` on any malformed input; the caller finishes
    with :meth:`expect_end` so trailing garbage is rejected too.
    """

    def __init__(self, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise WireFormatError(
                f"wire frames are bytes, got {type(data).__name__}"
            )
        self._data = bytes(data)
        self._offset = 0

    @property
    def remaining(self) -> int:
        """Bytes not yet consumed."""
        return len(self._data) - self._offset

    def read_bytes(self, count: int) -> bytes:
        """Consume exactly *count* raw bytes."""
        if count < 0 or count > self.remaining:
            raise WireFormatError(
                f"truncated frame: need {count} bytes, have {self.remaining}"
            )
        start = self._offset
        self._offset += count
        return self._data[start:self._offset]

    def read_varint(self, limit: int = _VARINT_LIMIT - 1) -> int:
        """Consume a canonical varint and check it against *limit*."""
        value = 0
        shift = 0
        for position in range(MAX_VARINT_BYTES):
            byte = self.read_bytes(1)[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                if position > 0 and byte == 0:
                    raise WireFormatError("non-canonical varint (redundant byte)")
                if value >= _VARINT_LIMIT:
                    raise WireFormatError(f"varint out of range: {value}")
                if value > limit:
                    raise WireFormatError(
                        f"varint {value} exceeds the field limit {limit}"
                    )
                return value
            shift += 7
        raise WireFormatError("varint longer than 10 bytes")

    def read_bigint(self, max_bytes: int = MAX_CIPHERTEXT_BYTES) -> int:
        """Consume a canonical length-prefixed big-endian integer."""
        length = self.read_varint(limit=max_bytes)
        raw = self.read_bytes(length)
        if length and raw[0] == 0:
            raise WireFormatError("non-canonical bigint (leading zero byte)")
        return int.from_bytes(raw, "big")

    def read_string(self) -> str:
        """Consume a length-prefixed UTF-8 string."""
        length = self.read_varint(limit=MAX_NAME_BYTES)
        raw = self.read_bytes(length)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError("invalid UTF-8 in wire string") from exc

    def read_bool(self) -> bool:
        """Consume a strict one-byte boolean."""
        byte = self.read_bytes(1)[0]
        if byte not in (0, 1):
            raise WireFormatError(f"invalid boolean byte 0x{byte:02x}")
        return byte == 1

    def read_float(self) -> float:
        """Consume an IEEE-754 big-endian double."""
        return struct.unpack(">d", self.read_bytes(8))[0]

    def read_ciphertext(self, width: int) -> int:
        """Consume one fixed-width big-endian ciphertext."""
        return int.from_bytes(self.read_bytes(width), "big")

    def expect_end(self) -> None:
        """Raise unless the buffer was consumed exactly."""
        if self.remaining:
            raise WireFormatError(f"{self.remaining} trailing bytes after the payload")


# ---------------------------------------------------------------------------
# cryptographic payload blocks
# ---------------------------------------------------------------------------

def _write_vector_block(
    out: bytearray,
    backend_name: str,
    length: int,
    packed: bool,
    weight: int,
    payload: tuple[int, ...],
    ciphertext_bytes: int,
) -> None:
    if not 0 < ciphertext_bytes <= MAX_CIPHERTEXT_BYTES:
        raise WireFormatError(
            f"ciphertext width {ciphertext_bytes} outside (0, {MAX_CIPHERTEXT_BYTES}]"
        )
    if length > MAX_VECTOR_COMPONENTS:
        raise WireFormatError(f"vector length {length} exceeds the wire limit")
    if weight < 1:
        raise WireFormatError("homomorphic weight must be >= 1")
    write_string(out, backend_name)
    write_varint(out, length)
    write_bool(out, packed)
    write_bigint(out, weight)
    write_varint(out, len(payload))
    for ciphertext in payload:
        write_ciphertext(out, ciphertext, ciphertext_bytes)


def _read_vector_block(
    reader: WireReader, ciphertext_bytes: int
) -> tuple[str, int, bool, int, tuple[int, ...]]:
    backend_name = reader.read_string()
    length = reader.read_varint(limit=MAX_VECTOR_COMPONENTS)
    packed = reader.read_bool()
    weight = reader.read_bigint(max_bytes=MAX_CIPHERTEXT_BYTES)
    if weight < 1:
        raise WireFormatError("homomorphic weight must be >= 1")
    count = reader.read_varint(limit=MAX_VECTOR_COMPONENTS)
    if count * ciphertext_bytes > reader.remaining:
        raise WireFormatError(
            f"truncated vector: {count} ciphertexts of {ciphertext_bytes} bytes "
            f"declared, {reader.remaining} bytes available"
        )
    if packed:
        # A packed vector never carries more ciphertexts than coordinates —
        # a frame claiming otherwise has overflowing slot metadata.
        if count > length or (length > 0 and count == 0):
            raise WireFormatError(
                f"inconsistent packed layout: {count} ciphertexts for "
                f"{length} coordinates"
            )
    elif count != length:
        raise WireFormatError(
            f"unpacked vector must carry one ciphertext per coordinate "
            f"(length {length}, ciphertexts {count})"
        )
    payload = tuple(reader.read_ciphertext(ciphertext_bytes) for _ in range(count))
    return backend_name, length, packed, weight, payload


def write_encrypted_vector(
    out: bytearray, vector: "EncryptedVector", ciphertext_bytes: int
) -> None:
    """Append the wire block of an :class:`~repro.crypto.backends.EncryptedVector`."""
    _write_vector_block(
        out, vector.backend_name, len(vector), vector.packed, vector.weight,
        vector.payload, ciphertext_bytes,
    )


def read_encrypted_vector(reader: WireReader, ciphertext_bytes: int) -> "EncryptedVector":
    """Decode one encrypted-vector block."""
    from .backends import EncryptedVector

    backend_name, length, packed, weight, payload = _read_vector_block(
        reader, ciphertext_bytes
    )
    return EncryptedVector(
        payload=payload, backend_name=backend_name, length=length,
        packed=packed, weight=weight,
    )


#: Largest share index the wire accepts (decoder limit; enforced on write
#: too so every serializable message deserializes).
MAX_SHARE_INDEX = 1 << 20


def write_partial_decryption(
    out: bytearray, partial: "PartialVectorDecryption", ciphertext_bytes: int
) -> None:
    """Append the wire block of a partial vector decryption."""
    if not 1 <= partial.share_index <= MAX_SHARE_INDEX:
        raise WireFormatError(
            f"share index {partial.share_index} outside [1, {MAX_SHARE_INDEX}]"
        )
    write_varint(out, partial.share_index)
    _write_vector_block(
        out, partial.backend_name, len(partial), partial.packed, partial.weight,
        partial.payload, ciphertext_bytes,
    )


def read_partial_decryption(
    reader: WireReader, ciphertext_bytes: int
) -> "PartialVectorDecryption":
    """Decode one partial-vector-decryption block."""
    from .backends import PartialVectorDecryption

    share_index = reader.read_varint(limit=MAX_SHARE_INDEX)
    if share_index < 1:
        raise WireFormatError("share indices are 1-based")
    backend_name, length, packed, weight, payload = _read_vector_block(
        reader, ciphertext_bytes
    )
    return PartialVectorDecryption(
        share_index=share_index, payload=payload, backend_name=backend_name,
        length=length, packed=packed, weight=weight,
    )
