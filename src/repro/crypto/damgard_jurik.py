"""The Damgård–Jurik generalisation of the Paillier cryptosystem.

The Chiaroscuro paper relies on an additively-homomorphic, semantically
secure encryption scheme whose decryption can be performed collaboratively by
a sufficiently large subset of participants; its implementation uses the
Damgård–Jurik scheme (PKC 2001), which this module reproduces.

Scheme summary for degree *s* (plaintexts in Z_{n^s}, ciphertexts in
Z_{n^{s+1}}):

* key generation: n = p*q with p, q primes, λ = lcm(p-1, q-1);
* encryption of m with randomness r in Z_n^*:
  c = (1 + n)^m * r^{n^s} mod n^{s+1};
* decryption: c^λ mod n^{s+1} = (1 + n)^{m λ mod n^s}; the discrete logarithm
  of an element of the form (1 + n)^i is extracted with the iterative
  algorithm of the original paper (:func:`dlog_one_plus_n`), then
  m = i * λ^{-1} mod n^s;
* additive homomorphism: multiplication of ciphertexts adds plaintexts,
  exponentiation by a constant multiplies the plaintext by that constant.

The threshold (collaborative) decryption used by Chiaroscuro lives in
:mod:`repro.crypto.threshold` and builds on the key material defined here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..exceptions import DecryptionError, EncryptionError, KeyGenerationError
from .math_utils import generate_distinct_primes, lcm, mod_inverse, random_coprime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .fastmath import BlinderPool, PrecomputedKey


@dataclass(frozen=True)
class DamgardJurikPublicKey:
    """Public key of the Damgård–Jurik scheme.

    Attributes
    ----------
    n:
        RSA modulus p*q.
    s:
        Degree of the scheme; the plaintext space is Z_{n^s} and the
        ciphertext space is Z_{n^{s+1}}.
    """

    n: int
    s: int = 1

    def __post_init__(self) -> None:
        if self.s < 1:
            raise KeyGenerationError(f"degree s must be >= 1, got {self.s}")
        if self.n < 6:
            raise KeyGenerationError(f"modulus n is too small: {self.n}")

    @property
    def plaintext_modulus(self) -> int:
        """n^s, the size of the plaintext space."""
        return self.n**self.s

    @property
    def ciphertext_modulus(self) -> int:
        """n^(s+1), the size of the ciphertext space."""
        return self.n ** (self.s + 1)

    @property
    def key_bits(self) -> int:
        """Bit length of the modulus n."""
        return self.n.bit_length()

    @property
    def ciphertext_bits(self) -> int:
        """Bit length of a ciphertext (used by the network cost model)."""
        return self.ciphertext_modulus.bit_length()


@dataclass(frozen=True)
class DamgardJurikPrivateKey:
    """Private key: λ = lcm(p-1, q-1) plus the primes for completeness."""

    public_key: DamgardJurikPublicKey
    lam: int
    p: int
    q: int


def generate_keypair(
    key_bits: int = 2048, s: int = 1
) -> tuple[DamgardJurikPublicKey, DamgardJurikPrivateKey]:
    """Generate a Damgård–Jurik key pair of degree *s*.

    The modulus has roughly *key_bits* bits.  Key generation retries until
    gcd(n, λ) = 1, which is required for decryption to be well defined (the
    condition fails only with negligible probability for realistic sizes, but
    the small keys used in tests make the retry loop worth having).
    """
    if key_bits < 16:
        raise KeyGenerationError(f"key_bits must be at least 16, got {key_bits}")
    prime_bits = key_bits // 2
    for _ in range(64):
        p, q = generate_distinct_primes(prime_bits)
        n = p * q
        lam = lcm(p - 1, q - 1)
        if math.gcd(n, lam) != 1:
            continue
        public = DamgardJurikPublicKey(n=n, s=s)
        return public, DamgardJurikPrivateKey(public, lam, p, q)
    raise KeyGenerationError("could not generate a valid Damgård–Jurik key pair")


def _one_plus_n_power(
    public_key: DamgardJurikPublicKey,
    exponent: int,
    precomputed: "PrecomputedKey | None" = None,
) -> int:
    """(1 + n)^exponent mod n^(s+1), computed via the binomial expansion.

    Only the first s+1 binomial terms survive modulo n^(s+1), which makes the
    expansion much cheaper than a generic modular exponentiation for large
    exponents.  A :class:`~repro.crypto.fastmath.PrecomputedKey` supplies the
    cached ``n^k`` powers and factorial inverses so the hot loop performs
    only multiplications.
    """
    if precomputed is not None:
        return precomputed.one_plus_n_pow(exponent)
    n = public_key.n
    modulus = public_key.ciphertext_modulus
    exponent = exponent % public_key.plaintext_modulus
    result = 1
    numerator = 1
    for k in range(1, public_key.s + 1):
        # C(exponent, k) * n^k mod n^{s+1}; k! is invertible because k < p, q.
        numerator = (numerator * ((exponent - (k - 1)) % modulus)) % modulus
        binomial = (numerator * mod_inverse(math.factorial(k), modulus)) % modulus
        contribution = (binomial * pow(n, k, modulus)) % modulus
        result = (result + contribution) % modulus
    return result


def encrypt(
    public_key: DamgardJurikPublicKey,
    plaintext: int,
    randomness: int | None = None,
    precomputed: "PrecomputedKey | None" = None,
    pool: "BlinderPool | None" = None,
) -> int:
    """Encrypt *plaintext* (an integer in Z_{n^s}) under *public_key*.

    A :class:`~repro.crypto.fastmath.BlinderPool` turns the blinder
    exponentiation into one multiplication by a precomputed ``r^{n^s}``; the
    pool's exact mode draws the same randomness stream as the fresh path, so
    the ciphertext distribution (and, for a fixed stream, the bits) are
    unchanged.  An explicit *randomness* argument always bypasses the pool.
    """
    n_to_s = public_key.plaintext_modulus
    modulus = public_key.ciphertext_modulus
    if not 0 <= plaintext < n_to_s:
        raise EncryptionError(
            f"plaintext must be in [0, n^s), got {plaintext} for n^s={n_to_s}"
        )
    g_to_m = _one_plus_n_power(public_key, plaintext, precomputed)
    if randomness is None:
        if pool is not None:
            return (g_to_m * pool.take()) % modulus
        randomness = random_coprime(public_key.n)
    elif math.gcd(randomness, public_key.n) != 1:
        raise EncryptionError("randomness must be coprime with n")
    if precomputed is not None:
        blinder = precomputed.crt_pow(randomness, n_to_s)
    else:
        blinder = pow(randomness, n_to_s, modulus)
    return (g_to_m * blinder) % modulus


def dlog_one_plus_n(public_key: DamgardJurikPublicKey, value: int) -> int:
    """Extract i from an element of the form (1 + n)^i mod n^(s+1).

    This is the iterative algorithm of Damgård–Jurik (PKC 2001, Section 4.2):
    working modulo increasing powers n^j, the higher-order binomial terms are
    subtracted using the approximation of i recovered so far.
    """
    n = public_key.n
    s = public_key.s
    i = 0
    for j in range(1, s + 1):
        n_to_j = n**j
        n_to_j_plus_1 = n_to_j * n
        reduced = value % n_to_j_plus_1
        if (reduced - 1) % n != 0:
            raise DecryptionError("value is not of the form (1 + n)^i")
        t1 = ((reduced - 1) // n) % n_to_j
        t2 = i
        for k in range(2, j + 1):
            i = i - 1
            t2 = (t2 * i) % n_to_j
            factor = (t2 * pow(n, k - 1, n_to_j)) % n_to_j
            t1 = (t1 - factor * mod_inverse(math.factorial(k), n_to_j)) % n_to_j
        i = t1
    return i


def decrypt(
    private_key: DamgardJurikPrivateKey,
    ciphertext: int,
    precomputed: "PrecomputedKey | None" = None,
) -> int:
    """Decrypt *ciphertext* with the non-threshold private key.

    With a private :class:`~repro.crypto.fastmath.PrecomputedKey` the
    decryption runs mod ``p^{s+1}`` and ``q^{s+1}`` separately with
    half-size exponents (CRT split, Damgård–Jurik Section 4.3) and returns
    exactly the same plaintext ~3–4× faster.
    """
    public = private_key.public_key
    modulus = public.ciphertext_modulus
    if not 0 <= ciphertext < modulus:
        raise DecryptionError("ciphertext out of range")
    if math.gcd(ciphertext, public.n) != 1:
        raise DecryptionError("ciphertext is not invertible")
    if precomputed is not None and precomputed.has_private:
        return precomputed.decrypt(ciphertext)
    powered = pow(ciphertext, private_key.lam, modulus)
    exponent = dlog_one_plus_n(public, powered)
    lam_inverse = mod_inverse(private_key.lam % public.plaintext_modulus, public.plaintext_modulus)
    return (exponent * lam_inverse) % public.plaintext_modulus


def add_ciphertexts(public_key: DamgardJurikPublicKey, *ciphertexts: int) -> int:
    """Homomorphic addition: the product of ciphertexts encrypts the sum."""
    if not ciphertexts:
        raise EncryptionError("add_ciphertexts requires at least one ciphertext")
    modulus = public_key.ciphertext_modulus
    result = 1
    for ciphertext in ciphertexts:
        result = (result * ciphertext) % modulus
    return result


def add_plaintext(
    public_key: DamgardJurikPublicKey,
    ciphertext: int,
    constant: int,
    precomputed: "PrecomputedKey | None" = None,
) -> int:
    """Homomorphically add a public constant to an encrypted value."""
    constant = constant % public_key.plaintext_modulus
    return (
        ciphertext * _one_plus_n_power(public_key, constant, precomputed)
    ) % public_key.ciphertext_modulus


def multiply_plaintext(
    public_key: DamgardJurikPublicKey,
    ciphertext: int,
    factor: int,
    precomputed: "PrecomputedKey | None" = None,
) -> int:
    """Homomorphically multiply an encrypted value by a public integer factor.

    Near-modulus-sized factors — e.g. the halving constant ``2^{-1} mod n^s``
    — take the CRT fast path when a private precomputation context is
    available (the in-process simulation holds the dealer key, so its
    backend may legitimately use it); small factors such as the gossip
    power-of-two lifts stay on the plain ``pow`` path where CRT overhead
    would dominate.
    """
    factor = factor % public_key.plaintext_modulus
    if precomputed is not None:
        return precomputed.crt_pow(ciphertext, factor)
    return pow(ciphertext, factor, public_key.ciphertext_modulus)


def halve_plaintext(
    public_key: DamgardJurikPublicKey,
    ciphertext: int,
    precomputed: "PrecomputedKey | None" = None,
) -> int:
    """Homomorphically halve an encrypted *even-representable* value.

    Multiplies the plaintext by the recurring halving constant
    ``2^{-1} mod n^s`` (cached on the precomputation context); exact for
    plaintexts that are even integers mod ``n^s``.
    """
    if precomputed is not None:
        return precomputed.crt_pow(ciphertext, precomputed.inv_two)
    inv_two = mod_inverse(2, public_key.plaintext_modulus)
    return pow(ciphertext, inv_two, public_key.ciphertext_modulus)


def rerandomize(
    public_key: DamgardJurikPublicKey,
    ciphertext: int,
    pool: "BlinderPool | None" = None,
) -> int:
    """Refresh the randomness of a ciphertext without changing its plaintext.

    With a :class:`~repro.crypto.fastmath.BlinderPool` the refresh costs one
    multiplication by a precomputed blinder instead of one exponentiation.
    """
    if pool is not None:
        return (ciphertext * pool.take()) % public_key.ciphertext_modulus
    blinder = pow(
        random_coprime(public_key.n), public_key.plaintext_modulus, public_key.ciphertext_modulus
    )
    return (ciphertext * blinder) % public_key.ciphertext_modulus


def encrypt_zero(
    public_key: DamgardJurikPublicKey,
    precomputed: "PrecomputedKey | None" = None,
    pool: "BlinderPool | None" = None,
) -> int:
    """A fresh encryption of zero."""
    return encrypt(public_key, 0, precomputed=precomputed, pool=pool)
