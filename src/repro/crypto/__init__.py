"""Cryptographic substrate: Paillier, Damgård–Jurik, threshold decryption,
fixed-point encoding and the pluggable cipher backends used by the protocol."""

from . import damgard_jurik, paillier
from .backends import (
    CipherBackend,
    DamgardJurikBackend,
    EncryptedVector,
    OperationCounter,
    PartialVectorDecryption,
    PlainBackend,
    make_backend,
    normalize_packing,
)
from .damgard_jurik import (
    DamgardJurikPrivateKey,
    DamgardJurikPublicKey,
    dlog_one_plus_n,
    generate_keypair,
)
from .encoding import DEFAULT_WEIGHT_BITS, FixedPointCodec, PackedCodec
from .fastmath import (
    FASTMATH_CHOICES,
    BlinderPool,
    FixedBaseTable,
    PrecomputedKey,
    multi_pow,
    normalize_fastmath,
    plan_pool_batch,
)
from .math_utils import (
    crt_pair,
    generate_prime,
    is_probable_prime,
    lcm,
    mod_inverse,
    random_coprime,
)
from .paillier import PaillierPrivateKey, PaillierPublicKey, generate_paillier_keypair
from .threshold import (
    KeyShare,
    PartialDecryption,
    ThresholdPublicKey,
    combine_partial_decryptions,
    generate_threshold_keypair,
    partial_decrypt,
    threshold_decrypt,
)

__all__ = [
    "paillier",
    "damgard_jurik",
    "CipherBackend",
    "DamgardJurikBackend",
    "PlainBackend",
    "EncryptedVector",
    "PartialVectorDecryption",
    "OperationCounter",
    "make_backend",
    "normalize_packing",
    "FASTMATH_CHOICES",
    "BlinderPool",
    "FixedBaseTable",
    "PrecomputedKey",
    "multi_pow",
    "normalize_fastmath",
    "plan_pool_batch",
    "DamgardJurikPublicKey",
    "DamgardJurikPrivateKey",
    "generate_keypair",
    "dlog_one_plus_n",
    "FixedPointCodec",
    "PackedCodec",
    "DEFAULT_WEIGHT_BITS",
    "PaillierPublicKey",
    "PaillierPrivateKey",
    "generate_paillier_keypair",
    "ThresholdPublicKey",
    "KeyShare",
    "PartialDecryption",
    "generate_threshold_keypair",
    "partial_decrypt",
    "combine_partial_decryptions",
    "threshold_decrypt",
    "is_probable_prime",
    "generate_prime",
    "lcm",
    "mod_inverse",
    "crt_pair",
    "random_coprime",
]
