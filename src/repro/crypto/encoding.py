"""Fixed-point encoding of real-valued time-series into the plaintext space.

Homomorphic schemes operate on integers modulo n^s while time-series points
are real numbers.  Chiaroscuro therefore encodes every value as a fixed-point
integer (``round(value * scale)``) before encryption and decodes after
decryption.  Because the protocol only ever *adds* encrypted values (gossip
sums of per-cluster sums, counts and noise shares), the scale is preserved by
every homomorphic operation and decoding is exact up to the quantisation
step.

Two codecs live here:

* :class:`FixedPointCodec` — one value per plaintext.  Negative values are
  mapped to the upper half of the plaintext space (two's-complement style),
  so sums of positive and negative contributions decode correctly as long as
  the true magnitude stays below ``modulus // (2 * headroom)``.
* :class:`PackedCodec` — many values per plaintext (slot packing).  A
  ``modulus_bits``-bit plaintext is divided into
  ``slots = (modulus_bits - headroom_bits) // slot_bits`` independent slots,
  each wide enough to hold one offset-encoded fixed-point value plus the
  headroom the gossip averaging needs (one bit per halving).  Packing cuts
  the number of bigint encryptions and homomorphic operations per vector by
  roughly the slot count, which is the dominant cost of the protocol.

Negative values cannot use two's-complement inside a slot (a borrow would
leak into the neighbouring slot), so every slot value is *offset encoded*:
``slot = round(value * scale) + offset`` with ``offset = 2^(value_bits-1)``,
keeping every slot non-negative.  A sum of W offset-encoded contributions
carries ``W * offset`` of accumulated offset; the backends track that public
integer W (the *weight*) on every ciphertext so the decoder can subtract it
exactly.  The gossip averaging keeps ``W = 2^halvings`` automatically (every
lift multiplies the weight by the same power of two it applies to the
ciphertext), so the correction is exact, never statistical.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from .._validation import check_positive_int
from ..exceptions import EncodingOverflowError, ValidationError

#: Default bits reserved per slot for homomorphic weight growth (gossip
#: halvings plus the noise-addition doubling plus safety margin).  Estimate
#: halvings follow a max-plus process across pairwise merges — both parties
#: adopt the same averaged estimate, so depth compounds — and empirically
#: reach about six per gossip cycle, not the naive two.  The protocol layers
#: pass an exact budget; this default covers standalone averaging runs of up
#: to ~10 cycles with margin.
DEFAULT_WEIGHT_BITS = 80

#: Default bits of top-of-plaintext headroom left unused by the packed
#: layout, guaranteeing every packed value stays strictly below the plaintext
#: modulus (which is generally not a power of two).
DEFAULT_PACK_HEADROOM_BITS = 2


@dataclass(frozen=True)
class FixedPointCodec:
    """Deterministic fixed-point codec for a given plaintext modulus.

    Attributes
    ----------
    modulus:
        Plaintext modulus n^s of the encryption scheme (or any power of ten
        for the plain backend).
    scale:
        Fixed-point scale; ``value`` is encoded as ``round(value * scale)``.
    """

    modulus: int
    scale: int = 10**6

    def __post_init__(self) -> None:
        check_positive_int(self.modulus, "modulus")
        check_positive_int(self.scale, "scale")
        if self.modulus <= 4 * self.scale:
            raise ValidationError(
                "plaintext modulus is too small for the requested scale "
                f"(modulus={self.modulus}, scale={self.scale})"
            )

    @property
    def half_modulus(self) -> int:
        """Boundary between the positive and negative halves of the space."""
        return self.modulus // 2

    @property
    def max_absolute_value(self) -> float:
        """Largest real magnitude that can be encoded without wrapping."""
        return self.half_modulus / self.scale

    # ------------------------------------------------------------------ scalars
    def encode(self, value: float) -> int:
        """Encode one real number into the plaintext space."""
        if not np.isfinite(value):
            raise ValidationError(f"cannot encode non-finite value {value!r}")
        fixed = int(round(float(value) * self.scale))
        if abs(fixed) >= self.half_modulus:
            raise EncodingOverflowError(
                f"value {value} does not fit: |{fixed}| >= modulus/2 ({self.half_modulus})"
            )
        return fixed % self.modulus

    def decode(self, encoded: int) -> float:
        """Decode one plaintext-space integer back into a real number."""
        encoded = int(encoded) % self.modulus
        if encoded >= self.half_modulus:
            encoded -= self.modulus
        return encoded / self.scale

    def encode_integer(self, value: int) -> int:
        """Encode an exact integer (e.g. a cluster count) without scaling."""
        if abs(int(value)) >= self.half_modulus:
            raise EncodingOverflowError(f"integer {value} does not fit in the plaintext space")
        return int(value) % self.modulus

    def decode_integer(self, encoded: int) -> int:
        """Decode an exact (unscaled) integer."""
        encoded = int(encoded) % self.modulus
        if encoded >= self.half_modulus:
            encoded -= self.modulus
        return encoded

    # ------------------------------------------------------------------ vectors
    def fixed_point_vector(self, values: Sequence[float] | np.ndarray) -> list[int]:
        """Vectorised ``round(value * scale)`` with the overflow check.

        Returns *signed* fixed-point integers (no modular reduction); both
        codecs build on this so the quantisation step is identical whether
        packing is enabled or not.
        """
        array = np.asarray(values, dtype=float).ravel()
        if array.size == 0:
            return []
        if not np.all(np.isfinite(array)):
            bad = array[~np.isfinite(array)][0]
            raise ValidationError(f"cannot encode non-finite value {bad!r}")
        scaled = array * float(self.scale)
        # np.rint rounds half to even, exactly like Python's round() on floats.
        if np.all(np.abs(scaled) < 2**62):
            fixed = np.rint(scaled).astype(np.int64).tolist()
        else:  # pragma: no cover - astronomically large scales only
            fixed = [int(round(float(value))) for value in scaled]
        worst = max(abs(value) for value in fixed)
        if worst >= self.half_modulus:
            raise EncodingOverflowError(
                f"value does not fit: |{worst}| >= modulus/2 ({self.half_modulus})"
            )
        return fixed

    def encode_vector(self, values: Sequence[float] | np.ndarray) -> list[int]:
        """Encode every component of a vector."""
        modulus = self.modulus
        return [fixed if fixed >= 0 else fixed + modulus
                for fixed in self.fixed_point_vector(values)]

    def decode_vector(self, encoded: Sequence[int]) -> np.ndarray:
        """Decode a vector of plaintext-space integers."""
        modulus = self.modulus
        half = self.half_modulus
        signed = [value if (value := int(raw) % modulus) < half else value - modulus
                  for raw in encoded]
        # int / int true division is correctly rounded at any magnitude,
        # unlike converting the (possibly huge) numerator to float first.
        return np.array([value / self.scale for value in signed], dtype=float)

    # ------------------------------------------------------------------ safety
    def max_safe_terms(self, value_bound: float) -> int:
        """How many values bounded by *value_bound* can be summed without overflow.

        The Chiaroscuro computation step sums at most ``n_participants``
        encodings plus the noise shares; callers use this bound to check that
        the configured key size leaves enough headroom.
        """
        if value_bound <= 0:
            raise ValidationError(f"value_bound must be > 0, got {value_bound}")
        per_term = int(round(value_bound * self.scale)) + 1
        return max(0, (self.half_modulus - 1) // per_term)

    def check_sum_capacity(self, value_bound: float, n_terms: int) -> None:
        """Raise :class:`EncodingOverflowError` if summing would overflow."""
        allowed = self.max_safe_terms(value_bound)
        if n_terms > allowed:
            raise EncodingOverflowError(
                f"summing {n_terms} values bounded by {value_bound} may overflow; "
                f"the codec supports at most {allowed} such terms "
                f"(modulus={self.modulus}, scale={self.scale})"
            )


@dataclass(frozen=True)
class PackedCodec:
    """Slot-packed fixed-point codec: many coordinates per plaintext.

    Attributes
    ----------
    modulus:
        Plaintext modulus n^s of the encryption scheme.
    scale:
        Fixed-point scale shared with the scalar codec (``value`` is encoded
        as ``round(value * scale)``).
    value_bits:
        Bits holding one offset-encoded fresh value; the per-slot offset is
        ``2^(value_bits - 1)``, so a fresh value's fixed-point magnitude must
        stay strictly below the offset.
    slot_bits:
        Total width of one slot.  ``slot_bits - value_bits`` bits of per-slot
        headroom absorb homomorphic weight growth: a ciphertext of weight W
        (W fresh contributions folded in, each lift/add updating W publicly)
        is decodable as long as ``W <= max_weight = 2^(slot_bits -
        value_bits)``.
    slots:
        Number of slots per plaintext.
    """

    modulus: int
    scale: int
    value_bits: int
    slot_bits: int
    slots: int

    def __post_init__(self) -> None:
        check_positive_int(self.modulus, "modulus")
        check_positive_int(self.scale, "scale")
        check_positive_int(self.slots, "slots")
        if self.value_bits < 2:
            raise ValidationError(f"value_bits must be >= 2, got {self.value_bits}")
        if self.slot_bits <= self.value_bits:
            raise ValidationError(
                f"slot_bits ({self.slot_bits}) must exceed value_bits ({self.value_bits})"
            )
        if self.slots * self.slot_bits > self.modulus.bit_length() - 1:
            raise ValidationError(
                f"{self.slots} slots of {self.slot_bits} bits do not fit a "
                f"{self.modulus.bit_length()}-bit plaintext modulus"
            )

    # ------------------------------------------------------------------ planning
    @classmethod
    def plan(
        cls,
        modulus: int,
        scale: int,
        value_bound: float = 1.0,
        weight_bits: int = DEFAULT_WEIGHT_BITS,
        slots: int | None = None,
        headroom_bits: int = DEFAULT_PACK_HEADROOM_BITS,
    ) -> "PackedCodec | None":
        """Lay out the widest packing that the plaintext space supports.

        Parameters
        ----------
        modulus, scale:
            Plaintext modulus and fixed-point scale of the backend.
        value_bound:
            Largest absolute value a *fresh* (weight-1) slot must hold;
            protocol callers inflate it to cover the noise-share tails.
        weight_bits:
            Per-slot headroom in bits: the largest supported homomorphic
            weight is ``2^weight_bits`` (one bit per gossip halving, plus the
            noise-addition doubling and margin).
        slots:
            Optional cap on the slot count (the ``crypto.packing = <slots>``
            configuration); the layout never exceeds what fits.
        headroom_bits:
            Unused bits left at the top of the plaintext.

        Returns ``None`` when fewer than two slots fit — packing would not
        save anything, so callers fall back to the scalar codec.
        """
        check_positive_int(modulus, "modulus")
        check_positive_int(scale, "scale")
        check_positive_int(weight_bits, "weight_bits")
        if value_bound <= 0:
            raise ValidationError(f"value_bound must be > 0, got {value_bound}")
        max_fixed = max(1, int(round(value_bound * scale)))
        value_bits = max_fixed.bit_length() + 1
        slot_bits = value_bits + weight_bits
        capacity = modulus.bit_length() - headroom_bits
        max_slots = capacity // slot_bits
        if max_slots < 2:
            return None
        if slots is not None:
            check_positive_int(slots, "slots")
            max_slots = min(max_slots, slots)
            if max_slots < 2:
                return None
        return cls(modulus=modulus, scale=scale, value_bits=value_bits,
                   slot_bits=slot_bits, slots=max_slots)

    # ------------------------------------------------------------------ properties
    @property
    def offset(self) -> int:
        """Per-slot offset keeping offset-encoded slot values non-negative."""
        return 1 << (self.value_bits - 1)

    @property
    def max_weight(self) -> int:
        """Largest homomorphic weight a slot can absorb without overflowing."""
        return 1 << (self.slot_bits - self.value_bits)

    @property
    def slot_mask(self) -> int:
        """Bit mask extracting one slot."""
        return (1 << self.slot_bits) - 1

    @property
    def max_absolute_value(self) -> float:
        """Largest real magnitude one fresh slot can encode."""
        return (self.offset - 1) / self.scale

    @cached_property
    def _scalar_codec(self) -> FixedPointCodec:
        """Scalar codec reused for the quantisation step (hot path)."""
        return FixedPointCodec(modulus=self.modulus, scale=self.scale)

    def n_ciphertexts(self, length: int) -> int:
        """Number of packed plaintexts needed for *length* coordinates."""
        if length < 0:
            raise ValidationError(f"length must be >= 0, got {length}")
        return -(-length // self.slots)

    # ------------------------------------------------------------------ weights
    def check_weight(self, weight: int) -> None:
        """Raise :class:`EncodingOverflowError` when *weight* exceeds the headroom."""
        if weight > self.max_weight:
            raise EncodingOverflowError(
                f"homomorphic weight {weight} exceeds the packed headroom "
                f"(max {self.max_weight}); use fewer gossip halvings, a wider "
                f"slot layout, or packing 'off'"
            )

    # ------------------------------------------------------------------ packing
    def _pack_fixed(self, fixed: Sequence[int]) -> list[int]:
        """Offset-encode signed fixed-point integers and pack them into plaintexts."""
        offset = self.offset
        limit = offset - 1
        packed: list[int] = []
        for start in range(0, len(fixed), self.slots):
            plaintext = 0
            for position, value in enumerate(fixed[start:start + self.slots]):
                if abs(value) > limit:
                    raise EncodingOverflowError(
                        f"fixed-point value {value} does not fit one packed slot "
                        f"(|value| > {limit}); lower the scale or widen the slots"
                    )
                plaintext |= (value + offset) << (position * self.slot_bits)
            packed.append(plaintext)
        return packed

    def pack_vector(self, values: Sequence[float] | np.ndarray) -> list[int]:
        """Encode a real-valued vector into packed plaintexts (weight 1)."""
        return self._pack_fixed(self._scalar_codec.fixed_point_vector(values))

    def pack_integer_vector(self, values: Sequence[int]) -> list[int]:
        """Encode exact integers (e.g. cluster counts) into packed plaintexts."""
        return self._pack_fixed([int(value) for value in values])

    def unpack_vector(
        self, packed: Sequence[int], length: int, weight: int = 1,
        integer: bool = False,
    ) -> np.ndarray:
        """Decode packed plaintexts back into *length* real coordinates.

        *weight* is the ciphertext's homomorphic weight: the decoder subtracts
        ``weight * offset`` of accumulated offset from every slot, which is
        exact because every homomorphic operation updates the weight publicly.
        """
        check_positive_int(weight, "weight")
        self.check_weight(weight)
        expected = self.n_ciphertexts(length)
        if len(packed) != expected:
            raise ValidationError(
                f"expected {expected} packed plaintexts for {length} coordinates, "
                f"got {len(packed)}"
            )
        base = self.offset * weight
        mask = self.slot_mask
        decoded = np.empty(length, dtype=float)
        index = 0
        for plaintext in packed:
            plaintext = int(plaintext)
            for position in range(self.slots):
                if index >= length:
                    break
                signed = ((plaintext >> (position * self.slot_bits)) & mask) - base
                decoded[index] = float(signed) if integer else signed / self.scale
                index += 1
        return decoded
