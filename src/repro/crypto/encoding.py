"""Fixed-point encoding of real-valued time-series into the plaintext space.

Homomorphic schemes operate on integers modulo n^s while time-series points
are real numbers.  Chiaroscuro therefore encodes every value as a fixed-point
integer (``round(value * scale)``) before encryption and decodes after
decryption.  Because the protocol only ever *adds* encrypted values (gossip
sums of per-cluster sums, counts and noise shares), the scale is preserved by
every homomorphic operation and decoding is exact up to the quantisation
step.

Negative values are mapped to the upper half of the plaintext space
(two's-complement style), so sums of positive and negative contributions
decode correctly as long as the true magnitude stays below
``modulus // (2 * headroom)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import check_positive_int
from ..exceptions import EncodingOverflowError, ValidationError


@dataclass(frozen=True)
class FixedPointCodec:
    """Deterministic fixed-point codec for a given plaintext modulus.

    Attributes
    ----------
    modulus:
        Plaintext modulus n^s of the encryption scheme (or any power of ten
        for the plain backend).
    scale:
        Fixed-point scale; ``value`` is encoded as ``round(value * scale)``.
    """

    modulus: int
    scale: int = 10**6

    def __post_init__(self) -> None:
        check_positive_int(self.modulus, "modulus")
        check_positive_int(self.scale, "scale")
        if self.modulus <= 4 * self.scale:
            raise ValidationError(
                "plaintext modulus is too small for the requested scale "
                f"(modulus={self.modulus}, scale={self.scale})"
            )

    @property
    def half_modulus(self) -> int:
        """Boundary between the positive and negative halves of the space."""
        return self.modulus // 2

    @property
    def max_absolute_value(self) -> float:
        """Largest real magnitude that can be encoded without wrapping."""
        return self.half_modulus / self.scale

    # ------------------------------------------------------------------ scalars
    def encode(self, value: float) -> int:
        """Encode one real number into the plaintext space."""
        if not np.isfinite(value):
            raise ValidationError(f"cannot encode non-finite value {value!r}")
        fixed = int(round(float(value) * self.scale))
        if abs(fixed) >= self.half_modulus:
            raise EncodingOverflowError(
                f"value {value} does not fit: |{fixed}| >= modulus/2 ({self.half_modulus})"
            )
        return fixed % self.modulus

    def decode(self, encoded: int) -> float:
        """Decode one plaintext-space integer back into a real number."""
        encoded = int(encoded) % self.modulus
        if encoded >= self.half_modulus:
            encoded -= self.modulus
        return encoded / self.scale

    def encode_integer(self, value: int) -> int:
        """Encode an exact integer (e.g. a cluster count) without scaling."""
        if abs(int(value)) >= self.half_modulus:
            raise EncodingOverflowError(f"integer {value} does not fit in the plaintext space")
        return int(value) % self.modulus

    def decode_integer(self, encoded: int) -> int:
        """Decode an exact (unscaled) integer."""
        encoded = int(encoded) % self.modulus
        if encoded >= self.half_modulus:
            encoded -= self.modulus
        return encoded

    # ------------------------------------------------------------------ vectors
    def encode_vector(self, values: Sequence[float] | np.ndarray) -> list[int]:
        """Encode every component of a vector."""
        return [self.encode(float(value)) for value in np.asarray(values, dtype=float).ravel()]

    def decode_vector(self, encoded: Sequence[int]) -> np.ndarray:
        """Decode a vector of plaintext-space integers."""
        return np.array([self.decode(int(value)) for value in encoded], dtype=float)

    # ------------------------------------------------------------------ safety
    def max_safe_terms(self, value_bound: float) -> int:
        """How many values bounded by *value_bound* can be summed without overflow.

        The Chiaroscuro computation step sums at most ``n_participants``
        encodings plus the noise shares; callers use this bound to check that
        the configured key size leaves enough headroom.
        """
        if value_bound <= 0:
            raise ValidationError(f"value_bound must be > 0, got {value_bound}")
        per_term = int(round(value_bound * self.scale)) + 1
        return max(0, (self.half_modulus - 1) // per_term)

    def check_sum_capacity(self, value_bound: float, n_terms: int) -> None:
        """Raise :class:`EncodingOverflowError` if summing would overflow."""
        allowed = self.max_safe_terms(value_bound)
        if n_terms > allowed:
            raise EncodingOverflowError(
                f"summing {n_terms} values bounded by {value_bound} may overflow; "
                f"the codec supports at most {allowed} such terms "
                f"(modulus={self.modulus}, scale={self.scale})"
            )
