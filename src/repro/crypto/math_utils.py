"""Number-theoretic helpers used by the Paillier / Damgård–Jurik schemes.

Everything here works on plain Python integers (arbitrary precision).  The
primality test is Miller–Rabin with a deterministic base set for 64-bit
inputs and a configurable number of random rounds above that, which is the
standard practice for generating keys of the sizes used in this library.
"""

from __future__ import annotations

import math
import secrets
from typing import Iterable

from ..exceptions import CryptoError, KeyGenerationError

#: Deterministic Miller–Rabin bases valid for every n < 3.3 * 10^24 (the
#: first 13 primes; with only the first 12 the proven bound would drop to
#: ~3.2 * 10^23, the smallest strong pseudoprime to bases 2..37).
_DETERMINISTIC_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

#: Largest bound proven for :data:`_DETERMINISTIC_BASES` (Sorenson & Webster,
#: 2015): below it the deterministic bases alone decide primality, so the
#: extra random rounds would only repeat work.
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981

#: Small primes used for fast trial division before Miller–Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
)


def is_probable_prime(candidate: int, rounds: int = 24) -> bool:
    """Return True when *candidate* is prime with overwhelming probability.

    Uses trial division by small primes followed by Miller–Rabin with the
    deterministic base set plus *rounds* random bases.  Below the proven
    deterministic bound (~3.3e24) the random rounds are skipped entirely:
    the fixed bases already give an exact answer there, which makes the
    small-key test paths pay 12 witnesses instead of 36.
    """
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False
    # Write candidate - 1 = d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def _witness(base: int) -> bool:
        """Return True when *base* witnesses that candidate is composite."""
        x = pow(base, d, candidate)
        if x in (1, candidate - 1):
            return False
        for _ in range(r - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                return False
        return True

    bases: list[int] = [base for base in _DETERMINISTIC_BASES if base < candidate - 1]
    if candidate >= _DETERMINISTIC_BOUND:
        for _ in range(rounds):
            bases.append(secrets.randbelow(candidate - 3) + 2)
    return not any(_witness(base) for base in bases)


def generate_prime(bits: int, rng: secrets.SystemRandom | None = None) -> int:
    """Generate a random prime of exactly *bits* bits."""
    if bits < 2:
        raise KeyGenerationError(f"cannot generate a prime of {bits} bits")
    if bits == 2:
        return 3
    attempts = 0
    max_attempts = 200 * bits
    while attempts < max_attempts:
        attempts += 1
        candidate = secrets.randbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate):
            return candidate
    raise KeyGenerationError(f"failed to find a {bits}-bit prime after {max_attempts} attempts")


def generate_distinct_primes(bits: int, count: int = 2) -> list[int]:
    """Generate *count* distinct primes of *bits* bits each."""
    primes: list[int] = []
    attempts = 0
    while len(primes) < count:
        attempts += 1
        if attempts > 100 * count:
            raise KeyGenerationError("failed to generate distinct primes")
        prime = generate_prime(bits)
        if prime not in primes:
            primes.append(prime)
    return primes


def lcm(a: int, b: int) -> int:
    """Least common multiple."""
    if a == 0 or b == 0:
        return 0
    return abs(a * b) // math.gcd(a, b)


def mod_inverse(value: int, modulus: int) -> int:
    """Modular inverse of *value* modulo *modulus*.

    Raises :class:`CryptoError` when the inverse does not exist.
    """
    if modulus <= 0:
        raise CryptoError(f"modulus must be positive, got {modulus}")
    try:
        return pow(value, -1, modulus)
    except ValueError as exc:
        raise CryptoError(f"{value} has no inverse modulo {modulus}") from exc


def crt_pair(residue_a: int, modulus_a: int, residue_b: int, modulus_b: int) -> int:
    """Chinese-remainder combination of two congruences with coprime moduli.

    Returns the unique x in [0, modulus_a * modulus_b) with
    x ≡ residue_a (mod modulus_a) and x ≡ residue_b (mod modulus_b).
    """
    if math.gcd(modulus_a, modulus_b) != 1:
        raise CryptoError("CRT moduli must be coprime")
    inverse = mod_inverse(modulus_a % modulus_b, modulus_b)
    difference = (residue_b - residue_a) % modulus_b
    combined = residue_a + modulus_a * ((difference * inverse) % modulus_b)
    return combined % (modulus_a * modulus_b)


def random_coprime(modulus: int) -> int:
    """Uniform random element of the multiplicative group modulo *modulus*."""
    if modulus <= 2:
        raise CryptoError(f"modulus must exceed 2, got {modulus}")
    while True:
        candidate = secrets.randbelow(modulus - 1) + 1
        if math.gcd(candidate, modulus) == 1:
            return candidate


def random_below(bound: int) -> int:
    """Uniform random integer in [0, bound)."""
    if bound <= 0:
        raise CryptoError(f"bound must be positive, got {bound}")
    return secrets.randbelow(bound)


def factorial(value: int) -> int:
    """Factorial of a non-negative integer (delegates to :mod:`math`)."""
    if value < 0:
        raise CryptoError(f"factorial of a negative number: {value}")
    return math.factorial(value)


def integer_digits(value: int, base: int, count: int) -> list[int]:
    """Decompose *value* into *count* base-*base* digits, least significant first."""
    if base < 2:
        raise CryptoError(f"base must be >= 2, got {base}")
    digits = []
    for _ in range(count):
        digits.append(value % base)
        value //= base
    return digits


def product(values: Iterable[int]) -> int:
    """Product of an iterable of integers (1 for an empty iterable)."""
    return math.prod(values)
