"""Pluggable cipher backends used by the Chiaroscuro computation step.

The demonstration (Section III.B of the paper) runs the protocol in two
modes: with real homomorphic operations, or with homomorphic operations
*disabled* — "the distributed algorithms are not changed whether homomorphic
operations are enabled or not" — while their cost is accounted for from
measurements.  This module reproduces exactly that design:

* :class:`DamgardJurikBackend` performs real Damgård–Jurik threshold
  encryption (any degree, any key size);
* :class:`PlainBackend` carries the encoded integers in clear and treats the
  "partial decryptions" as pass-through tokens, while counting the same
  operations so that the cost model of :mod:`repro.analysis.costs` can charge
  realistic times and bandwidth.

Both expose the same :class:`CipherBackend` interface, so the protocol code
is byte-for-byte identical under either backend.

The base class owns the whole encode→encrypt→operate→decrypt→decode
pipeline as template methods; concrete backends only provide the primitive
payload operations (encrypt a list of plaintexts, add two payloads, …).
This is what makes **slot packing** a backend-local concern: when packing is
enabled (see :class:`~repro.crypto.encoding.PackedCodec`), a d-coordinate
vector travels as ``ceil(d / slots)`` ciphertexts instead of d, every
homomorphic operation touches that many bigints, and the operation counters
and payload sizes shrink accordingly — while the protocol layers keep
handling the same opaque :class:`EncryptedVector`.

Every ciphertext carries a public integer *weight*: the number of fresh
(weight-1) encryptions folded into it, with additions summing weights and
plaintext multiplications scaling them.  The packed decoder needs the weight
to subtract the accumulated per-slot offsets exactly; unpacked payloads
ignore it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import CryptoError, ThresholdError, ValidationError
from . import damgard_jurik as dj
from .encoding import DEFAULT_WEIGHT_BITS, FixedPointCodec, PackedCodec
from .fastmath import (
    FASTMATH_CHOICES,
    BlinderPool,
    PrecomputedKey,
    multi_pow,
    normalize_fastmath,
    plan_pool_batch,
)
from .threshold import (
    KeyShare,
    PartialDecryption,
    ThresholdPublicKey,
    combine_partial_decryptions,
    generate_threshold_keypair,
    partial_decrypt,
)

#: Packing knob values accepted everywhere (configuration, CLI, factories):
#: ``"off"`` disables packing, ``"auto"`` packs as many slots as the
#: plaintext space supports, an integer caps the slot count.
PACKING_CHOICES = ("auto", "off")


def normalize_packing(packing: int | str) -> int | str:
    """Validate and canonicalise a ``packing`` knob value.

    Returns ``"off"``, ``"auto"`` or a positive slot count.  Accepts integers
    and numeric strings so the CLI can pass its argument through verbatim.
    """
    if isinstance(packing, bool):
        raise ValidationError(f"invalid packing option {packing!r}")
    if isinstance(packing, int):
        if packing < 1:
            raise ValidationError(f"packing slot count must be >= 1, got {packing}")
        return packing
    if isinstance(packing, str):
        if packing in PACKING_CHOICES:
            return packing
        try:
            return normalize_packing(int(packing))
        except (TypeError, ValueError):
            pass
    raise ValidationError(
        f"invalid packing option {packing!r}: expected 'auto', 'off' or a slot count"
    )


@dataclass
class OperationCounter:
    """Counts of cryptographic operations, used by the cost model.

    Counts are per *ciphertext*, not per logical coordinate: with packing
    enabled they genuinely shrink by the slot count, which is exactly what
    the cost model should charge for.

    ``pooled_encryptions`` counts the subset of ``encryptions`` whose
    blinder came from the amortized fastmath pool (one multiplication on
    the hot path instead of one exponentiation) so the cost model can
    charge amortized and fresh exponentiations differently;
    ``rerandomizations`` counts ciphertext randomness refreshes.
    """

    encryptions: int = 0
    additions: int = 0
    partial_decryptions: int = 0
    combinations: int = 0
    pooled_encryptions: int = 0
    rerandomizations: int = 0

    def merge(self, other: "OperationCounter") -> "OperationCounter":
        """Return a new counter with the element-wise sums."""
        return OperationCounter(
            encryptions=self.encryptions + other.encryptions,
            additions=self.additions + other.additions,
            partial_decryptions=self.partial_decryptions + other.partial_decryptions,
            combinations=self.combinations + other.combinations,
            pooled_encryptions=self.pooled_encryptions + other.pooled_encryptions,
            rerandomizations=self.rerandomizations + other.rerandomizations,
        )

    def as_dict(self) -> dict[str, int]:
        """Plain dictionary view (for logs and reports)."""
        return {
            "encryptions": self.encryptions,
            "additions": self.additions,
            "partial_decryptions": self.partial_decryptions,
            "combinations": self.combinations,
            "pooled_encryptions": self.pooled_encryptions,
            "rerandomizations": self.rerandomizations,
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.encryptions = 0
        self.additions = 0
        self.partial_decryptions = 0
        self.combinations = 0
        self.pooled_encryptions = 0
        self.rerandomizations = 0


@dataclass(frozen=True)
class EncryptedVector:
    """An opaque encrypted vector owned by the backend that produced it.

    Without packing the payload holds one ciphertext per coordinate; with
    packing it holds ``ceil(length / slots)`` packed ciphertexts.  Protocol
    code never inspects the payload; it only passes vectors back to the
    backend that produced them.

    ``weight`` is the public homomorphic weight (fresh encryptions folded
    in); the packed decoder uses it to subtract the accumulated per-slot
    offsets.  ``len(vector)`` is always the *logical* coordinate count.
    """

    payload: tuple[int, ...]
    backend_name: str
    length: int | None = None
    packed: bool = False
    weight: int = 1

    def __post_init__(self) -> None:
        if self.length is None:
            object.__setattr__(self, "length", len(self.payload))

    @property
    def n_ciphertexts(self) -> int:
        """Number of ciphertexts actually carried (what bandwidth costs)."""
        return len(self.payload)

    def __len__(self) -> int:
        return int(self.length)  # type: ignore[arg-type]


@dataclass(frozen=True)
class PartialVectorDecryption:
    """The partial decryption of every ciphertext of an encrypted vector."""

    share_index: int
    payload: tuple[int, ...]
    backend_name: str
    length: int | None = None
    packed: bool = False
    weight: int = 1

    def __post_init__(self) -> None:
        if self.length is None:
            object.__setattr__(self, "length", len(self.payload))

    def __len__(self) -> int:
        return int(self.length)  # type: ignore[arg-type]


class CipherBackend(ABC):
    """Interface every cipher backend implements.

    The protocol uses only these operations: encrypt a real-valued vector,
    encrypt a zero vector, add two encrypted vectors, produce a partial
    decryption with one key share, and combine enough partial decryptions
    back into a real-valued vector.

    The base class implements all of them as templates over five primitive
    payload operations (:meth:`_encrypt_plaintexts`, :meth:`_add_payloads`,
    :meth:`_multiply_payload`, :meth:`_partial_decrypt_payload`,
    :meth:`_combine_payloads`), so encoding, packing, weight tracking,
    validation and operation counting live in exactly one place.
    """

    #: Short identifier, also stamped on the vectors the backend produces.
    name: str = "abstract"

    def __init__(
        self,
        codec: FixedPointCodec,
        threshold: int,
        n_shares: int,
        packed_codec: PackedCodec | None = None,
    ) -> None:
        if threshold > n_shares:
            raise ValidationError(
                f"threshold ({threshold}) cannot exceed n_shares ({n_shares})"
            )
        self.codec = codec
        self.threshold = threshold
        self.n_shares = n_shares
        self.packing = packed_codec
        self.counter = OperationCounter()

    # ------------------------------------------------------------------ helpers
    @property
    def is_packed(self) -> bool:
        """Whether this backend packs several coordinates per ciphertext."""
        return self.packing is not None

    @property
    def plaintext_capacity_bits(self) -> int:
        """Bits one logical coordinate can grow into before overflowing.

        Unpacked, that is the whole plaintext space; packed, it is one slot.
        The gossip layer checks its halving budget against this.
        """
        if self.packing is not None:
            return self.packing.slot_bits
        return self.codec.modulus.bit_length() - 1

    def _check_vector(self, vector: EncryptedVector) -> None:
        if vector.backend_name != self.name:
            raise CryptoError(
                f"vector produced by backend {vector.backend_name!r} passed to {self.name!r}"
            )
        if vector.packed != self.is_packed:
            raise CryptoError(
                "vector packing layout does not match the backend "
                f"(vector packed={vector.packed}, backend packed={self.is_packed})"
            )

    def _encode_vector(
        self, values: Sequence[float] | Sequence[int] | np.ndarray, integer: bool = False
    ) -> tuple[list[int], int]:
        """Shared encode(-and-pack) step: values → plaintexts + logical length.

        This is the single code path behind :meth:`encrypt_vector`,
        :meth:`encrypt_integer_vector` and :meth:`encrypt_zero_vector` for
        both the packed and unpacked layouts.
        """
        if integer:
            ints = [int(value) for value in values]
            if self.packing is not None:
                return self.packing.pack_integer_vector(ints), len(ints)
            return [self.codec.encode_integer(value) for value in ints], len(ints)
        array = np.asarray(values, dtype=float).ravel()
        if self.packing is not None:
            return self.packing.pack_vector(array), int(array.size)
        return self.codec.encode_vector(array), int(array.size)

    def _vector(self, payload: Sequence[int], length: int, weight: int = 1) -> EncryptedVector:
        return EncryptedVector(
            payload=tuple(payload), backend_name=self.name, length=length,
            packed=self.is_packed, weight=weight,
        )

    # ------------------------------------------------------------------ primitives
    @abstractmethod
    def _encrypt_plaintexts(self, plaintexts: Sequence[int]) -> tuple[int, ...]:
        """Encrypt each plaintext integer into one ciphertext."""

    @abstractmethod
    def _add_payloads(
        self, first: Sequence[int], second: Sequence[int]
    ) -> tuple[int, ...]:
        """Homomorphically add two equal-length ciphertext payloads."""

    @abstractmethod
    def _multiply_payload(self, payload: Sequence[int], factor: int) -> tuple[int, ...]:
        """Homomorphically multiply every ciphertext by a public integer."""

    @abstractmethod
    def _partial_decrypt_payload(
        self, share_index: int, payload: Sequence[int]
    ) -> tuple[int, ...]:
        """Partially decrypt every ciphertext with one key share."""

    def _rerandomize_payload(self, payload: Sequence[int]) -> tuple[int, ...]:
        """Refresh the randomness of every ciphertext (identity by default).

        Backends without semantic security (the plain simulation backend)
        have nothing to refresh; real backends multiply by a fresh — or
        pooled — encryption of zero.
        """
        return tuple(payload)

    def _linear_combination_payloads(
        self, payloads: Sequence[Sequence[int]], factors: Sequence[int]
    ) -> tuple[int, ...]:
        """Component-wise homomorphic weighted sum ``Σ factors[j] · payloads[j]``.

        The default composes the scalar-multiply and add primitives exactly
        as the historical gossip code path did; backends with a faster joint
        evaluation (Straus multi-exponentiation) override this.
        """
        accumulated: Sequence[int] | None = None
        for payload, factor in zip(payloads, factors):
            scaled = payload if factor == 1 else self._multiply_payload(payload, factor)
            accumulated = scaled if accumulated is None else self._add_payloads(accumulated, scaled)
        assert accumulated is not None  # guarded by linear_combination()
        return tuple(accumulated)

    @abstractmethod
    def _combine_payloads(self, partials: Sequence[PartialVectorDecryption]) -> list[int]:
        """Combine partial decryptions into the list of plaintext integers."""

    @property
    @abstractmethod
    def ciphertext_bits(self) -> int:
        """Size in bits of one ciphertext (for the network cost model)."""

    # ------------------------------------------------------------------ interface
    def encrypt_vector(self, values: Sequence[float] | np.ndarray) -> EncryptedVector:
        """Encrypt a real-valued vector (packed when packing is enabled)."""
        plaintexts, length = self._encode_vector(values)
        ciphertexts = self._encrypt_plaintexts(plaintexts)
        self.counter.encryptions += len(ciphertexts)
        return self._vector(ciphertexts, length)

    def encrypt_integer_vector(self, values: Sequence[int]) -> EncryptedVector:
        """Encrypt a vector of exact integers (e.g. cluster counts)."""
        plaintexts, length = self._encode_vector(values, integer=True)
        ciphertexts = self._encrypt_plaintexts(plaintexts)
        self.counter.encryptions += len(ciphertexts)
        return self._vector(ciphertexts, length)

    def encrypt_zero_vector(self, length: int) -> EncryptedVector:
        """Encrypt the all-zero vector of the given length."""
        if self.packing is not None:
            plaintexts = self.packing.pack_vector(np.zeros(length))
        else:
            plaintexts = [0] * length
        ciphertexts = self._encrypt_plaintexts(plaintexts)
        self.counter.encryptions += len(ciphertexts)
        return self._vector(ciphertexts, length)

    def add(self, first: EncryptedVector, second: EncryptedVector) -> EncryptedVector:
        """Homomorphically add two encrypted vectors component-wise."""
        self._check_vector(first)
        self._check_vector(second)
        if len(first) != len(second):
            raise CryptoError(f"vector lengths differ: {len(first)} vs {len(second)}")
        weight = first.weight + second.weight
        if self.packing is not None:
            self.packing.check_weight(weight)
        summed = self._add_payloads(first.payload, second.payload)
        self.counter.additions += len(summed)
        return self._vector(summed, len(first), weight=weight)

    def multiply_scalar(self, vector: EncryptedVector, factor: int) -> EncryptedVector:
        """Homomorphically multiply every component by a public integer factor.

        The encrypted gossip averaging uses this with powers of two to bring
        two estimates to a common fixed-point exponent before adding them.
        """
        self._check_vector(vector)
        if factor < 0:
            raise CryptoError("scalar factors must be non-negative integers")
        factor = int(factor)
        if self.packing is not None and factor == 0:
            # A zero factor would also zero the accumulated slot offsets,
            # which the public weight could no longer describe.
            raise CryptoError("packed vectors require strictly positive scalar factors")
        weight = max(vector.weight * factor, 1)
        if self.packing is not None:
            self.packing.check_weight(weight)
        scaled = self._multiply_payload(vector.payload, factor)
        self.counter.additions += len(scaled)
        return self._vector(scaled, len(vector), weight=weight)

    def linear_combination(
        self, vectors: Sequence[EncryptedVector], factors: Sequence[int]
    ) -> EncryptedVector:
        """Homomorphic weighted sum ``Σ factors[j] · vectors[j]`` in one pass.

        This is the primitive behind gossip averaging: lifting two estimates
        to a common fixed-point exponent and adding them is the linear
        combination with power-of-two factors.  Operation counting matches
        the equivalent multiply-then-add sequence (one addition-equivalent
        per ciphertext per non-unit factor, plus one per ciphertext per
        fold), so the cost model charges the same work either way; fast
        backends may *evaluate* it jointly (Straus) without changing the
        charge.
        """
        if not vectors:
            raise CryptoError("linear_combination requires at least one vector")
        if len(vectors) != len(factors):
            raise CryptoError(
                f"need one factor per vector, got {len(vectors)} vectors "
                f"and {len(factors)} factors"
            )
        length = len(vectors[0])
        for vector in vectors:
            self._check_vector(vector)
            if len(vector) != length:
                raise CryptoError(f"vector lengths differ: {length} vs {len(vector)}")
        factors = [int(factor) for factor in factors]
        for factor in factors:
            if factor < 1:
                raise CryptoError("linear combination factors must be positive integers")
        weight = sum(vector.weight * factor for vector, factor in zip(vectors, factors))
        if self.packing is not None:
            self.packing.check_weight(weight)
        combined = self._linear_combination_payloads(
            [vector.payload for vector in vectors], factors
        )
        lifts = sum(1 for factor in factors if factor != 1)
        self.counter.additions += len(combined) * (lifts + len(vectors) - 1)
        return self._vector(combined, length, weight=weight)

    def rerandomize(self, vector: EncryptedVector) -> EncryptedVector:
        """Refresh every ciphertext's randomness without changing the plaintexts.

        With the fastmath blinder pool this costs one multiplication per
        ciphertext, which makes per-hop re-randomisation of forwarded gossip
        payloads affordable.
        """
        self._check_vector(vector)
        payload = self._rerandomize_payload(vector.payload)
        self.counter.rerandomizations += len(payload)
        return self._vector(payload, len(vector), weight=vector.weight)

    def partial_decrypt_vector(
        self, share_index: int, vector: EncryptedVector
    ) -> PartialVectorDecryption:
        """Produce the partial decryption of a vector with one key share."""
        self._check_vector(vector)
        payload = self._partial_decrypt_payload(share_index, vector.payload)
        self.counter.partial_decryptions += len(payload)
        return PartialVectorDecryption(
            share_index=share_index, payload=payload, backend_name=self.name,
            length=len(vector), packed=vector.packed, weight=vector.weight,
        )

    def combine_vector(
        self, partials: Sequence[PartialVectorDecryption], integer: bool = False
    ) -> np.ndarray:
        """Combine partial decryptions into the decoded real-valued vector.

        When *integer* is true the components are decoded as exact integers
        (cluster counts) instead of fixed-point reals.
        """
        if not partials:
            raise ThresholdError("no partial decryptions supplied")
        lengths = {len(partial) for partial in partials}
        payload_lengths = {len(partial.payload) for partial in partials}
        if len(lengths) != 1 or len(payload_lengths) != 1:
            raise ThresholdError("partial decryptions have inconsistent lengths")
        for partial in partials:
            if partial.backend_name != self.name:
                raise CryptoError("partial decryption from a different backend")
        plaintexts = self._combine_payloads(partials)
        self.counter.combinations += len(plaintexts)
        first = partials[0]
        if self.packing is not None and first.packed:
            return self.packing.unpack_vector(
                plaintexts, len(first), weight=first.weight, integer=integer
            )
        if integer:
            return np.array(
                [float(self.codec.decode_integer(value)) for value in plaintexts],
                dtype=float,
            )
        return self.codec.decode_vector(plaintexts)

    # ------------------------------------------------------------------ conveniences
    def decrypt_with_shares(
        self, vector: EncryptedVector, share_indices: Sequence[int], integer: bool = False
    ) -> np.ndarray:
        """Partial-decrypt with the given shares then combine (testing helper)."""
        partials = [self.partial_decrypt_vector(index, vector) for index in share_indices]
        return self.combine_vector(partials, integer=integer)


class DamgardJurikBackend(CipherBackend):
    """Backend performing real Damgård–Jurik threshold encryption.

    With ``fastmath="auto"`` (the default) the backend builds a
    :class:`~repro.crypto.fastmath.PrecomputedKey` from the dealer key it
    already holds (this is an in-process simulation: the dealer key is the
    test oracle) and an amortized
    :class:`~repro.crypto.fastmath.BlinderPool`, which together give CRT
    private-key operations, pooled one-multiply encryption/rerandomisation
    and Straus multi-exponentiation for share combination and homomorphic
    weighted sums.  Every produced integer is identical to the
    ``fastmath="off"`` path given the same randomness stream.
    """

    name = "damgard_jurik"

    def __init__(
        self,
        key_bits: int = 512,
        degree: int = 1,
        threshold: int = 3,
        n_shares: int = 8,
        encoding_scale: int = 10**6,
        packing: int | str = "off",
        packing_value_bound: float = 1.0,
        packing_weight_bits: int = DEFAULT_WEIGHT_BITS,
        fastmath: str = "auto",
        pool_batch: int | None = None,
    ) -> None:
        public, shares, dealer_key = generate_threshold_keypair(
            key_bits=key_bits, s=degree, threshold=threshold, n_shares=n_shares
        )
        modulus = public.public_key.plaintext_modulus
        codec = FixedPointCodec(modulus=modulus, scale=encoding_scale)
        packed_codec = _plan_packing(
            packing, modulus, encoding_scale, packing_value_bound, packing_weight_bits
        )
        super().__init__(codec=codec, threshold=threshold, n_shares=n_shares,
                         packed_codec=packed_codec)
        self.threshold_public: ThresholdPublicKey = public
        self._shares: dict[int, KeyShare] = {share.index: share for share in shares}
        self._dealer_key = dealer_key
        self.fastmath = normalize_fastmath(fastmath)
        self._precomputed: PrecomputedKey | None = None
        self._pool: BlinderPool | None = None
        self._service = None
        if self.fastmath_enabled:
            self._precomputed = PrecomputedKey.from_private_key(dealer_key)
            self._pool = BlinderPool(self._precomputed, batch_size=pool_batch or 32)

    # ------------------------------------------------------------------ properties
    @property
    def fastmath_enabled(self) -> bool:
        """Whether the modular-arithmetic fast path is active."""
        return self.fastmath != "off"

    @property
    def public_key(self) -> dj.DamgardJurikPublicKey:
        """The underlying Damgård–Jurik public key."""
        return self.threshold_public.public_key

    @property
    def ciphertext_bits(self) -> int:
        return self.public_key.ciphertext_bits

    def share_for(self, index: int) -> KeyShare:
        """Return the key share with 1-based index *index*."""
        try:
            return self._shares[index]
        except KeyError as exc:
            raise ThresholdError(f"no key share with index {index}") from exc

    def precomputation_service(self):
        """The backend's offline precomputation service (pool-sharing).

        Lazily built around the backend's own blinder pool, so pooled state
        has exactly one owner; ``None`` when fastmath is off.  See
        :class:`~repro.crypto.precompute.PrecomputationService`.
        """
        if self._pool is None or self._precomputed is None:
            return None
        if self._service is None:
            from .precompute import PrecomputationService

            self._service = PrecomputationService(self._precomputed, pool=self._pool)
        return self._service

    def configure_pool(self, expected_per_round: int,
                       background: bool = False,
                       pool_file: str | None = None) -> None:
        """Size and prefill the blinder pool from the cost model's demand.

        *expected_per_round* is the number of hot-path encryptions the
        protocol performs per round (see
        :attr:`~repro.analysis.costs.ProtocolWorkload.encryptions_per_iteration`);
        a no-op when fastmath is off.  *background* additionally starts the
        pool's refill worker thread (see
        :meth:`~repro.crypto.fastmath.BlinderPool.start_background_refill`),
        which the live runner's workers enable after forking.  *pool_file*
        runs the persisted-pool protocol first: absorb-and-delete the file
        if present, then write a fresh batch for the next run (see
        :meth:`~repro.crypto.precompute.PrecomputationService.adopt_pool_file`).
        """
        if self._pool is None:
            return
        self._pool.batch_size = plan_pool_batch(expected_per_round)
        if pool_file:
            service = self.precomputation_service()
            if service is not None:
                service.adopt_pool_file(pool_file)
        if not len(self._pool):
            self._pool.refill()
        if background:
            self._pool.start_background_refill()

    # ------------------------------------------------------------------ primitives
    def _encrypt_plaintexts(self, plaintexts: Sequence[int]) -> tuple[int, ...]:
        if self._pool is not None:
            self.counter.pooled_encryptions += len(plaintexts)
        return tuple(
            dj.encrypt(self.public_key, value,
                       precomputed=self._precomputed, pool=self._pool)
            for value in plaintexts
        )

    def _add_payloads(
        self, first: Sequence[int], second: Sequence[int]
    ) -> tuple[int, ...]:
        return tuple(
            dj.add_ciphertexts(self.public_key, a, b) for a, b in zip(first, second)
        )

    def _multiply_payload(self, payload: Sequence[int], factor: int) -> tuple[int, ...]:
        return tuple(
            dj.multiply_plaintext(self.public_key, ciphertext, factor,
                                  precomputed=self._precomputed)
            for ciphertext in payload
        )

    def _rerandomize_payload(self, payload: Sequence[int]) -> tuple[int, ...]:
        return tuple(
            dj.rerandomize(self.public_key, ciphertext, pool=self._pool)
            for ciphertext in payload
        )

    def _linear_combination_payloads(
        self, payloads: Sequence[Sequence[int]], factors: Sequence[int]
    ) -> tuple[int, ...]:
        if not self.fastmath_enabled or len(payloads) == 1:
            return super()._linear_combination_payloads(payloads, factors)
        modulus = self.public_key.ciphertext_modulus
        return tuple(
            multi_pow([payload[component] for payload in payloads], factors, modulus)
            for component in range(len(payloads[0]))
        )

    def _partial_decrypt_payload(
        self, share_index: int, payload: Sequence[int]
    ) -> tuple[int, ...]:
        share = self.share_for(share_index)
        return tuple(
            partial_decrypt(self.threshold_public, share, ciphertext,
                            precomputed=self._precomputed).value
            for ciphertext in payload
        )

    def _combine_payloads(self, partials: Sequence[PartialVectorDecryption]) -> list[int]:
        plaintexts: list[int] = []
        for component in range(len(partials[0].payload)):
            component_partials = [
                PartialDecryption(index=partial.share_index, value=partial.payload[component])
                for partial in partials
            ]
            plaintexts.append(
                combine_partial_decryptions(
                    self.threshold_public, component_partials,
                    multiexp=self.fastmath_enabled,
                )
            )
        return plaintexts


class PlainBackend(CipherBackend):
    """Backend reproducing the demo's "homomorphic operations disabled" mode.

    Values travel as fixed-point encoded integers; additions are integer
    additions modulo the codec modulus, and partial decryptions are
    pass-through tokens (the combination step simply checks that enough
    distinct tokens were gathered, mirroring the threshold rule).  Operation
    counts are identical to the real backend's, so the cost model can charge
    measured per-operation times.

    The modular arithmetic runs on NumPy slabs — int64 when the modulus (and
    scalar factor) leave enough room, Python-object arrays otherwise — so
    large crypto-free simulations are not bottlenecked on per-coordinate
    Python loops.

    With packing enabled the simulated plaintext space is widened to match
    the plaintext of the simulated ciphertext (``simulated_ciphertext_bits /
    2``, the degree-1 Damgård–Jurik relation): the packed layout then mirrors
    what the real backend would do with a key of that size, so the operation
    counts and bandwidth the cost model charges stay faithful.  Packing
    ``"off"`` keeps the historical ``modulus_bits`` layout byte for byte.
    """

    name = "plain"

    def __init__(
        self,
        threshold: int = 3,
        n_shares: int = 8,
        encoding_scale: int = 10**6,
        modulus_bits: int = 256,
        simulated_ciphertext_bits: int = 4096,
        packing: int | str = "off",
        packing_value_bound: float = 1.0,
        packing_weight_bits: int = DEFAULT_WEIGHT_BITS,
        fastmath: str = "auto",
    ) -> None:
        if normalize_packing(packing) != "off":
            modulus_bits = max(modulus_bits, simulated_ciphertext_bits // 2)
        modulus = 1 << modulus_bits
        codec = FixedPointCodec(modulus=modulus, scale=encoding_scale)
        packed_codec = _plan_packing(
            packing, modulus, encoding_scale, packing_value_bound, packing_weight_bits
        )
        super().__init__(codec=codec, threshold=threshold, n_shares=n_shares,
                         packed_codec=packed_codec)
        self._simulated_ciphertext_bits = simulated_ciphertext_bits
        # The plain backend has no bigints to accelerate; the knob is kept
        # (and validated) so configurations stay backend-portable.
        self.fastmath = normalize_fastmath(fastmath)

    @property
    def ciphertext_bits(self) -> int:
        return self._simulated_ciphertext_bits

    # ------------------------------------------------------------------ primitives
    def _encrypt_plaintexts(self, plaintexts: Sequence[int]) -> tuple[int, ...]:
        return tuple(int(value) for value in plaintexts)

    def _add_payloads(
        self, first: Sequence[int], second: Sequence[int]
    ) -> tuple[int, ...]:
        modulus = self.codec.modulus
        if modulus.bit_length() <= 62:
            a = np.fromiter(first, dtype=np.int64, count=len(first))
            b = np.fromiter(second, dtype=np.int64, count=len(second))
            return tuple(int(value) for value in (a + b) % modulus)
        a = np.array(first, dtype=object)
        b = np.array(second, dtype=object)
        return tuple(int(value) for value in (a + b) % modulus)

    def _multiply_payload(self, payload: Sequence[int], factor: int) -> tuple[int, ...]:
        modulus = self.codec.modulus
        if modulus.bit_length() + factor.bit_length() <= 62:
            a = np.fromiter(payload, dtype=np.int64, count=len(payload))
            return tuple(int(value) for value in (a * factor) % modulus)
        a = np.array(payload, dtype=object)
        return tuple(int(value) for value in (a * factor) % modulus)

    def _partial_decrypt_payload(
        self, share_index: int, payload: Sequence[int]
    ) -> tuple[int, ...]:
        if not 1 <= share_index <= self.n_shares:
            raise ThresholdError(f"no key share with index {share_index}")
        return tuple(payload)

    def _combine_payloads(self, partials: Sequence[PartialVectorDecryption]) -> list[int]:
        distinct = {partial.share_index for partial in partials}
        if len(distinct) < self.threshold:
            raise ThresholdError(
                f"need at least {self.threshold} distinct partial decryptions, got {len(distinct)}"
            )
        payloads = {partial.payload for partial in partials}
        if len(payloads) != 1:
            raise ThresholdError("partial decryptions disagree; vectors were not identical")
        return list(payloads.pop())


def _plan_packing(
    packing: int | str,
    modulus: int,
    scale: int,
    value_bound: float,
    weight_bits: int,
) -> PackedCodec | None:
    """Resolve a packing knob into a :class:`PackedCodec` (or None for off).

    Falls back to ``None`` (unpacked) when the plaintext space cannot fit at
    least two slots of the requested layout.
    """
    packing = normalize_packing(packing)
    if packing == "off":
        return None
    slots = None if packing == "auto" else int(packing)
    return PackedCodec.plan(
        modulus, scale, value_bound=value_bound, weight_bits=weight_bits, slots=slots
    )


def make_backend(
    backend: str,
    key_bits: int = 512,
    degree: int = 1,
    threshold: int = 3,
    n_shares: int = 8,
    encoding_scale: int = 10**6,
    packing: int | str = "off",
    packing_value_bound: float = 1.0,
    packing_weight_bits: int = DEFAULT_WEIGHT_BITS,
    fastmath: str = "auto",
) -> CipherBackend:
    """Factory mapping a configuration string to a backend instance.

    ``"paillier"`` is the degree-1 Damgård–Jurik scheme (they coincide), kept
    as a separate name for clarity in configurations.

    ``packing`` is ``"off"`` (one ciphertext per coordinate, the historical
    layout), ``"auto"`` (as many slots per ciphertext as the plaintext space
    supports) or a positive slot count.  ``packing_value_bound`` is the
    largest magnitude one fresh slot must hold (inflate it to cover noise
    shares); ``packing_weight_bits`` is the per-slot headroom for gossip
    halvings.

    ``fastmath`` is ``"auto"`` (CRT private-key operations, amortized
    blinder pools, multi-exponentiation — same integers, less time) or
    ``"off"`` (the seed's arithmetic, bit for bit given the same randomness
    stream).
    """
    if backend == "damgard_jurik":
        return DamgardJurikBackend(
            key_bits=key_bits,
            degree=degree,
            threshold=threshold,
            n_shares=n_shares,
            encoding_scale=encoding_scale,
            packing=packing,
            packing_value_bound=packing_value_bound,
            packing_weight_bits=packing_weight_bits,
            fastmath=fastmath,
        )
    if backend == "paillier":
        return DamgardJurikBackend(
            key_bits=key_bits,
            degree=1,
            threshold=threshold,
            n_shares=n_shares,
            encoding_scale=encoding_scale,
            packing=packing,
            packing_value_bound=packing_value_bound,
            packing_weight_bits=packing_weight_bits,
            fastmath=fastmath,
        )
    if backend == "plain":
        return PlainBackend(
            threshold=threshold, n_shares=n_shares, encoding_scale=encoding_scale,
            packing=packing, packing_value_bound=packing_value_bound,
            packing_weight_bits=packing_weight_bits, fastmath=fastmath,
        )
    raise ValidationError(f"unknown backend {backend!r}")
