"""Pluggable cipher backends used by the Chiaroscuro computation step.

The demonstration (Section III.B of the paper) runs the protocol in two
modes: with real homomorphic operations, or with homomorphic operations
*disabled* — "the distributed algorithms are not changed whether homomorphic
operations are enabled or not" — while their cost is accounted for from
measurements.  This module reproduces exactly that design:

* :class:`DamgardJurikBackend` performs real Damgård–Jurik threshold
  encryption (any degree, any key size);
* :class:`PlainBackend` carries the encoded integers in clear and treats the
  "partial decryptions" as pass-through tokens, while counting the same
  operations so that the cost model of :mod:`repro.analysis.costs` can charge
  realistic times and bandwidth.

Both expose the same :class:`CipherBackend` interface, so the protocol code
is byte-for-byte identical under either backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..exceptions import CryptoError, ThresholdError, ValidationError
from . import damgard_jurik as dj
from .encoding import FixedPointCodec
from .threshold import (
    KeyShare,
    PartialDecryption,
    ThresholdPublicKey,
    combine_partial_decryptions,
    generate_threshold_keypair,
    partial_decrypt,
)


@dataclass
class OperationCounter:
    """Counts of cryptographic operations, used by the cost model."""

    encryptions: int = 0
    additions: int = 0
    partial_decryptions: int = 0
    combinations: int = 0

    def merge(self, other: "OperationCounter") -> "OperationCounter":
        """Return a new counter with the element-wise sums."""
        return OperationCounter(
            encryptions=self.encryptions + other.encryptions,
            additions=self.additions + other.additions,
            partial_decryptions=self.partial_decryptions + other.partial_decryptions,
            combinations=self.combinations + other.combinations,
        )

    def as_dict(self) -> dict[str, int]:
        """Plain dictionary view (for logs and reports)."""
        return {
            "encryptions": self.encryptions,
            "additions": self.additions,
            "partial_decryptions": self.partial_decryptions,
            "combinations": self.combinations,
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.encryptions = 0
        self.additions = 0
        self.partial_decryptions = 0
        self.combinations = 0


@dataclass(frozen=True)
class EncryptedVector:
    """An element-wise encrypted vector (one ciphertext per component).

    The payload is backend-specific: Damgård–Jurik ciphertexts for the real
    backend, fixed-point encoded integers for the plain backend.  Protocol
    code never inspects the payload; it only passes vectors back to the
    backend that produced them.
    """

    payload: tuple[int, ...]
    backend_name: str

    def __len__(self) -> int:
        return len(self.payload)


@dataclass(frozen=True)
class PartialVectorDecryption:
    """The partial decryption of every component of an encrypted vector."""

    share_index: int
    payload: tuple[int, ...]
    backend_name: str

    def __len__(self) -> int:
        return len(self.payload)


class CipherBackend(ABC):
    """Interface every cipher backend implements.

    The protocol uses only these operations: encrypt a real-valued vector,
    encrypt a zero vector, add two encrypted vectors, produce a partial
    decryption with one key share, and combine enough partial decryptions
    back into a real-valued vector.
    """

    #: Short identifier, also stamped on the vectors the backend produces.
    name: str = "abstract"

    def __init__(self, codec: FixedPointCodec, threshold: int, n_shares: int) -> None:
        if threshold > n_shares:
            raise ValidationError(
                f"threshold ({threshold}) cannot exceed n_shares ({n_shares})"
            )
        self.codec = codec
        self.threshold = threshold
        self.n_shares = n_shares
        self.counter = OperationCounter()

    # ------------------------------------------------------------------ helpers
    def _check_vector(self, vector: EncryptedVector) -> None:
        if vector.backend_name != self.name:
            raise CryptoError(
                f"vector produced by backend {vector.backend_name!r} passed to {self.name!r}"
            )

    @property
    @abstractmethod
    def ciphertext_bits(self) -> int:
        """Size in bits of one ciphertext (for the network cost model)."""

    # ------------------------------------------------------------------ interface
    @abstractmethod
    def encrypt_vector(self, values: Sequence[float] | np.ndarray) -> EncryptedVector:
        """Encrypt a real-valued vector component-wise."""

    @abstractmethod
    def encrypt_integer_vector(self, values: Sequence[int]) -> EncryptedVector:
        """Encrypt a vector of exact integers (e.g. cluster counts)."""

    @abstractmethod
    def encrypt_zero_vector(self, length: int) -> EncryptedVector:
        """Encrypt the all-zero vector of the given length."""

    @abstractmethod
    def add(self, first: EncryptedVector, second: EncryptedVector) -> EncryptedVector:
        """Homomorphically add two encrypted vectors component-wise."""

    @abstractmethod
    def multiply_scalar(self, vector: EncryptedVector, factor: int) -> EncryptedVector:
        """Homomorphically multiply every component by a public integer factor.

        The encrypted gossip averaging uses this with powers of two to bring
        two estimates to a common fixed-point exponent before adding them.
        """

    @abstractmethod
    def partial_decrypt_vector(
        self, share_index: int, vector: EncryptedVector
    ) -> PartialVectorDecryption:
        """Produce the partial decryption of a vector with one key share."""

    @abstractmethod
    def combine_vector(
        self, partials: Sequence[PartialVectorDecryption], integer: bool = False
    ) -> np.ndarray:
        """Combine partial decryptions into the decoded real-valued vector.

        When *integer* is true the components are decoded as exact integers
        (cluster counts) instead of fixed-point reals.
        """

    # ------------------------------------------------------------------ conveniences
    def decrypt_with_shares(
        self, vector: EncryptedVector, share_indices: Sequence[int], integer: bool = False
    ) -> np.ndarray:
        """Partial-decrypt with the given shares then combine (testing helper)."""
        partials = [self.partial_decrypt_vector(index, vector) for index in share_indices]
        return self.combine_vector(partials, integer=integer)


class DamgardJurikBackend(CipherBackend):
    """Backend performing real Damgård–Jurik threshold encryption."""

    name = "damgard_jurik"

    def __init__(
        self,
        key_bits: int = 512,
        degree: int = 1,
        threshold: int = 3,
        n_shares: int = 8,
        encoding_scale: int = 10**6,
    ) -> None:
        public, shares, dealer_key = generate_threshold_keypair(
            key_bits=key_bits, s=degree, threshold=threshold, n_shares=n_shares
        )
        codec = FixedPointCodec(modulus=public.public_key.plaintext_modulus, scale=encoding_scale)
        super().__init__(codec=codec, threshold=threshold, n_shares=n_shares)
        self.threshold_public: ThresholdPublicKey = public
        self._shares: dict[int, KeyShare] = {share.index: share for share in shares}
        self._dealer_key = dealer_key

    # ------------------------------------------------------------------ properties
    @property
    def public_key(self) -> dj.DamgardJurikPublicKey:
        """The underlying Damgård–Jurik public key."""
        return self.threshold_public.public_key

    @property
    def ciphertext_bits(self) -> int:
        return self.public_key.ciphertext_bits

    def share_for(self, index: int) -> KeyShare:
        """Return the key share with 1-based index *index*."""
        try:
            return self._shares[index]
        except KeyError as exc:
            raise ThresholdError(f"no key share with index {index}") from exc

    # ------------------------------------------------------------------ interface
    def encrypt_vector(self, values: Sequence[float] | np.ndarray) -> EncryptedVector:
        encoded = self.codec.encode_vector(values)
        ciphertexts = tuple(dj.encrypt(self.public_key, value) for value in encoded)
        self.counter.encryptions += len(ciphertexts)
        return EncryptedVector(payload=ciphertexts, backend_name=self.name)

    def encrypt_integer_vector(self, values: Sequence[int]) -> EncryptedVector:
        encoded = [self.codec.encode_integer(int(value)) for value in values]
        ciphertexts = tuple(dj.encrypt(self.public_key, value) for value in encoded)
        self.counter.encryptions += len(ciphertexts)
        return EncryptedVector(payload=ciphertexts, backend_name=self.name)

    def encrypt_zero_vector(self, length: int) -> EncryptedVector:
        ciphertexts = tuple(dj.encrypt(self.public_key, 0) for _ in range(length))
        self.counter.encryptions += length
        return EncryptedVector(payload=ciphertexts, backend_name=self.name)

    def add(self, first: EncryptedVector, second: EncryptedVector) -> EncryptedVector:
        self._check_vector(first)
        self._check_vector(second)
        if len(first) != len(second):
            raise CryptoError(f"vector lengths differ: {len(first)} vs {len(second)}")
        summed = tuple(
            dj.add_ciphertexts(self.public_key, a, b)
            for a, b in zip(first.payload, second.payload)
        )
        self.counter.additions += len(summed)
        return EncryptedVector(payload=summed, backend_name=self.name)

    def multiply_scalar(self, vector: EncryptedVector, factor: int) -> EncryptedVector:
        self._check_vector(vector)
        if factor < 0:
            raise CryptoError("scalar factors must be non-negative integers")
        scaled = tuple(
            dj.multiply_plaintext(self.public_key, ciphertext, factor)
            for ciphertext in vector.payload
        )
        self.counter.additions += len(scaled)
        return EncryptedVector(payload=scaled, backend_name=self.name)

    def partial_decrypt_vector(
        self, share_index: int, vector: EncryptedVector
    ) -> PartialVectorDecryption:
        self._check_vector(vector)
        share = self.share_for(share_index)
        payload = tuple(
            partial_decrypt(self.threshold_public, share, ciphertext).value
            for ciphertext in vector.payload
        )
        self.counter.partial_decryptions += len(payload)
        return PartialVectorDecryption(
            share_index=share_index, payload=payload, backend_name=self.name
        )

    def combine_vector(
        self, partials: Sequence[PartialVectorDecryption], integer: bool = False
    ) -> np.ndarray:
        if not partials:
            raise ThresholdError("no partial decryptions supplied")
        lengths = {len(partial) for partial in partials}
        if len(lengths) != 1:
            raise ThresholdError("partial decryptions have inconsistent lengths")
        for partial in partials:
            if partial.backend_name != self.name:
                raise CryptoError("partial decryption from a different backend")
        length = lengths.pop()
        decoded = np.empty(length, dtype=float)
        for component in range(length):
            component_partials = [
                PartialDecryption(index=partial.share_index, value=partial.payload[component])
                for partial in partials
            ]
            plaintext = combine_partial_decryptions(self.threshold_public, component_partials)
            if integer:
                decoded[component] = float(self.codec.decode_integer(plaintext))
            else:
                decoded[component] = self.codec.decode(plaintext)
        self.counter.combinations += length
        return decoded


class PlainBackend(CipherBackend):
    """Backend reproducing the demo's "homomorphic operations disabled" mode.

    Values travel as fixed-point encoded integers; additions are integer
    additions modulo the codec modulus, and partial decryptions are
    pass-through tokens (the combination step simply checks that enough
    distinct tokens were gathered, mirroring the threshold rule).  Operation
    counts are identical to the real backend's, so the cost model can charge
    measured per-operation times.
    """

    name = "plain"

    def __init__(
        self,
        threshold: int = 3,
        n_shares: int = 8,
        encoding_scale: int = 10**6,
        modulus_bits: int = 256,
        simulated_ciphertext_bits: int = 4096,
    ) -> None:
        codec = FixedPointCodec(modulus=1 << modulus_bits, scale=encoding_scale)
        super().__init__(codec=codec, threshold=threshold, n_shares=n_shares)
        self._simulated_ciphertext_bits = simulated_ciphertext_bits

    @property
    def ciphertext_bits(self) -> int:
        return self._simulated_ciphertext_bits

    # ------------------------------------------------------------------ interface
    def encrypt_vector(self, values: Sequence[float] | np.ndarray) -> EncryptedVector:
        encoded = tuple(self.codec.encode_vector(values))
        self.counter.encryptions += len(encoded)
        return EncryptedVector(payload=encoded, backend_name=self.name)

    def encrypt_integer_vector(self, values: Sequence[int]) -> EncryptedVector:
        encoded = tuple(self.codec.encode_integer(int(value)) for value in values)
        self.counter.encryptions += len(encoded)
        return EncryptedVector(payload=encoded, backend_name=self.name)

    def encrypt_zero_vector(self, length: int) -> EncryptedVector:
        self.counter.encryptions += length
        return EncryptedVector(payload=(0,) * length, backend_name=self.name)

    def add(self, first: EncryptedVector, second: EncryptedVector) -> EncryptedVector:
        self._check_vector(first)
        self._check_vector(second)
        if len(first) != len(second):
            raise CryptoError(f"vector lengths differ: {len(first)} vs {len(second)}")
        modulus = self.codec.modulus
        summed = tuple((a + b) % modulus for a, b in zip(first.payload, second.payload))
        self.counter.additions += len(summed)
        return EncryptedVector(payload=summed, backend_name=self.name)

    def multiply_scalar(self, vector: EncryptedVector, factor: int) -> EncryptedVector:
        self._check_vector(vector)
        if factor < 0:
            raise CryptoError("scalar factors must be non-negative integers")
        modulus = self.codec.modulus
        scaled = tuple((value * factor) % modulus for value in vector.payload)
        self.counter.additions += len(scaled)
        return EncryptedVector(payload=scaled, backend_name=self.name)

    def partial_decrypt_vector(
        self, share_index: int, vector: EncryptedVector
    ) -> PartialVectorDecryption:
        self._check_vector(vector)
        if not 1 <= share_index <= self.n_shares:
            raise ThresholdError(f"no key share with index {share_index}")
        self.counter.partial_decryptions += len(vector)
        return PartialVectorDecryption(
            share_index=share_index, payload=vector.payload, backend_name=self.name
        )

    def combine_vector(
        self, partials: Sequence[PartialVectorDecryption], integer: bool = False
    ) -> np.ndarray:
        if not partials:
            raise ThresholdError("no partial decryptions supplied")
        distinct = {partial.share_index for partial in partials}
        if len(distinct) < self.threshold:
            raise ThresholdError(
                f"need at least {self.threshold} distinct partial decryptions, got {len(distinct)}"
            )
        payloads = {partial.payload for partial in partials}
        if len(payloads) != 1:
            raise ThresholdError("partial decryptions disagree; vectors were not identical")
        payload = payloads.pop()
        self.counter.combinations += len(payload)
        if integer:
            return np.array(
                [float(self.codec.decode_integer(value)) for value in payload], dtype=float
            )
        return self.codec.decode_vector(payload)


def make_backend(
    backend: str,
    key_bits: int = 512,
    degree: int = 1,
    threshold: int = 3,
    n_shares: int = 8,
    encoding_scale: int = 10**6,
) -> CipherBackend:
    """Factory mapping a configuration string to a backend instance.

    ``"paillier"`` is the degree-1 Damgård–Jurik scheme (they coincide), kept
    as a separate name for clarity in configurations.
    """
    if backend == "damgard_jurik":
        return DamgardJurikBackend(
            key_bits=key_bits,
            degree=degree,
            threshold=threshold,
            n_shares=n_shares,
            encoding_scale=encoding_scale,
        )
    if backend == "paillier":
        return DamgardJurikBackend(
            key_bits=key_bits,
            degree=1,
            threshold=threshold,
            n_shares=n_shares,
            encoding_scale=encoding_scale,
        )
    if backend == "plain":
        return PlainBackend(
            threshold=threshold, n_shares=n_shares, encoding_scale=encoding_scale
        )
    raise ValidationError(f"unknown backend {backend!r}")
