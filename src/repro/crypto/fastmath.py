"""Modular-arithmetic fast path for the Damgård–Jurik crypto hot loop.

Every Chiaroscuro run is dominated by a handful of bigint modular
exponentiations: encryption pays ``r^{n^s} mod n^{s+1}``, decryption pays
``c^λ mod n^{s+1}``, every partial decryption pays ``c^{2Δs_i}`` and every
gossip merge pays a multi-term homomorphic accumulation.  This module
implements the standard accelerations from the Damgård–Jurik paper (PKC
2001, Section 4.3) and the classical exponentiation literature, without
changing a single decrypted bit:

* :class:`PrecomputedKey` — per-key precomputation: CRT split of the
  private-key operations over ``p^{s+1}`` / ``q^{s+1}`` with cached
  λ-residues, decryption constants and recombination inverses (~3–4× on
  every private ``pow``); cached ``n^k mod n^{s+1}`` powers, factorial
  inverses for the ``(1+n)^m`` binomial expansion and the halving constant
  ``2^{-1} mod n^s``;
* :class:`FixedBaseTable` — windowed fixed-base exponentiation for a base
  that recurs with varying exponents (used by the derived-blinder pool
  mode, exposed for any recurring-base workload);
* :class:`BlinderPool` — an amortized pool of precomputed encryption
  blinders ``r^{n^s} mod n^{s+1}`` so that hot-path ``encrypt`` /
  ``rerandomize`` cost one bigint multiplication instead of one full
  exponentiation.  The default ``exact`` mode draws its randomness through
  the very same :func:`~repro.crypto.math_utils.random_coprime` calls, in
  the same order, as fresh encryption — given the same randomness stream
  the produced ciphertexts are bit-identical to the unpooled path;
* :func:`multi_pow` — Straus simultaneous multi-exponentiation for
  ``Π bᵢ^{eᵢ} mod m`` (threshold share combination, homomorphic weighted
  accumulation in the gossip layer).

All of these are *exact* accelerations: with ``fastmath = off`` the library
reproduces the seed behaviour bit for bit given the same randomness stream,
and with ``fastmath = auto`` every decrypted plaintext is the same integer —
only the wall-clock changes.

When `gmpy2 <https://gmpy2.readthedocs.io>`_ is importable, the hot
modular primitives (:func:`powmod`, :func:`invert`) ride its ``mpz``
implementations instead of CPython's ``pow`` — same integers, GMP speed.
The library never requires gmpy2: absent, the pure-Python path runs.  Both
helpers live inside the fastmath machinery only, so ``fastmath = off``
keeps the seed arithmetic untouched either way.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Callable, Sequence

from ..exceptions import CryptoError, ValidationError
from .math_utils import mod_inverse, random_coprime

try:  # pragma: no cover - exercised only where gmpy2 is installed
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover - the common container case
    _gmpy2 = None

#: Whether the optional gmpy2 backend is active for :func:`powmod` /
#: :func:`invert` (purely a wall-clock matter; results are identical).
HAVE_GMPY2 = _gmpy2 is not None


def powmod(base: int, exponent: int, modulus: int) -> int:
    """``base^exponent mod modulus`` on the fastest available bigint backend.

    Semantically identical to the built-in three-argument ``pow`` —
    including negative exponents for invertible bases — but routed through
    ``gmpy2.powmod`` when the library is importable.
    """
    if _gmpy2 is not None:
        try:
            return int(_gmpy2.powmod(base, exponent, modulus))
        except (ValueError, ZeroDivisionError) as exc:
            raise CryptoError(
                f"powmod({base}, {exponent}, {modulus}) is undefined"
            ) from exc
    return pow(base, exponent, modulus)


def invert(value: int, modulus: int) -> int:
    """Modular inverse on the fastest available bigint backend.

    Same contract as :func:`~repro.crypto.math_utils.mod_inverse`
    (:class:`CryptoError` when no inverse exists), via ``gmpy2.invert``
    when importable.
    """
    if _gmpy2 is not None:
        if modulus <= 0:
            raise CryptoError(f"modulus must be positive, got {modulus}")
        try:
            return int(_gmpy2.invert(value, modulus))
        except ZeroDivisionError as exc:
            raise CryptoError(f"{value} has no inverse modulo {modulus}") from exc
    return mod_inverse(value, modulus)

#: Fastmath knob values accepted everywhere (configuration, CLI, factories).
FASTMATH_CHOICES = ("auto", "off")

#: Below this exponent bit length a plain ``pow`` beats the CRT split (two
#: half-width exponentiations plus the recombination overhead).  Gossip lift
#: factors (small powers of two) stay on the plain path because of this.
_CRT_MIN_EXPONENT_BITS = 96

#: Bound on the number of distinct exponents whose CRT residues are cached
#: per key.  The recurring exponents of a run (``n^s``, the per-share
#: threshold exponents, the halving constant) are far fewer than this; the
#: cap only guards against an adversarial stream of unique exponents.
_EXPONENT_CACHE_LIMIT = 256

#: Straus interleaving processes bases in groups of this size: the shared
#: table has ``2^group`` entries, so 4 keeps precomputation negligible while
#: still merging the squaring chains of up to four exponentiations.
_STRAUS_GROUP = 4


def normalize_fastmath(fastmath: str) -> str:
    """Validate and canonicalise a ``fastmath`` knob value."""
    if isinstance(fastmath, str) and fastmath in FASTMATH_CHOICES:
        return fastmath
    raise ValidationError(
        f"invalid fastmath option {fastmath!r}: expected one of {FASTMATH_CHOICES}"
    )


# --------------------------------------------------------------------------- multi-exponentiation
def _straus_group(pairs: Sequence[tuple[int, int]], modulus: int) -> int:
    """Simultaneous exponentiation of at most :data:`_STRAUS_GROUP` pairs."""
    count = len(pairs)
    table = [1] * (1 << count)
    for position, (base, _) in enumerate(pairs):
        low = 1 << position
        for index in range(low, low << 1):
            table[index] = (table[index - low] * base) % modulus
    result = 1
    for bit in range(max(e.bit_length() for _, e in pairs) - 1, -1, -1):
        result = (result * result) % modulus
        index = 0
        for position, (_, exponent) in enumerate(pairs):
            if (exponent >> bit) & 1:
                index |= 1 << position
        if index:
            result = (result * table[index]) % modulus
    return result


def multi_pow(bases: Sequence[int], exponents: Sequence[int], modulus: int) -> int:
    """Straus simultaneous multi-exponentiation: ``Π bases[i]^exponents[i] mod modulus``.

    Sharing one squaring chain across the whole product replaces ``t`` full
    square-and-multiply runs by a single one, which is the classical win for
    threshold share combination and for homomorphic weighted accumulation.
    Negative exponents are supported for invertible bases (as ``pow`` does).
    """
    if len(bases) != len(exponents):
        raise CryptoError(
            f"multi_pow needs one exponent per base, got {len(bases)} vs {len(exponents)}"
        )
    if modulus <= 0:
        raise CryptoError(f"modulus must be positive, got {modulus}")
    pairs: list[tuple[int, int]] = []
    for base, exponent in zip(bases, exponents):
        if exponent < 0:
            base = invert(base, modulus)
            exponent = -exponent
        if exponent:
            pairs.append((base % modulus, exponent))
    if not pairs:
        return 1 % modulus
    result = 1
    for start in range(0, len(pairs), _STRAUS_GROUP):
        group = pairs[start : start + _STRAUS_GROUP]
        result = (result * _straus_group(group, modulus)) % modulus
    return result


# --------------------------------------------------------------------------- fixed-base tables
class FixedBaseTable:
    """Windowed fixed-base exponentiation: many exponents, one base.

    Precomputes ``base^(d · 2^(w·i)) mod modulus`` for every window digit
    ``d`` and block ``i``, after which :meth:`pow` costs only one
    multiplication per non-zero window digit — no squarings at all.  Worth
    building whenever the same base is exponentiated more than a handful of
    times (derived blinder generation, any recurring-generator workload).
    """

    def __init__(self, base: int, modulus: int, max_exponent_bits: int, window: int = 5) -> None:
        if modulus <= 1:
            raise CryptoError(f"modulus must exceed 1, got {modulus}")
        if max_exponent_bits < 1:
            raise CryptoError("max_exponent_bits must be >= 1")
        if not 1 <= window <= 16:
            raise CryptoError(f"window must be in [1, 16], got {window}")
        self.modulus = modulus
        self.window = window
        self.max_exponent_bits = max_exponent_bits
        n_blocks = -(-max_exponent_bits // window)
        block_base = base % modulus
        table: list[list[int]] = []
        for _ in range(n_blocks):
            row = [1] * (1 << window)
            for digit in range(1, 1 << window):
                row[digit] = (row[digit - 1] * block_base) % modulus
            table.append(row)
            block_base = (row[-1] * block_base) % modulus  # base^(2^window) for the next block
        self._table = table

    def pow(self, exponent: int) -> int:
        """``base^exponent mod modulus`` using only table lookups and multiplies."""
        if exponent < 0:
            raise CryptoError("FixedBaseTable only supports non-negative exponents")
        if exponent.bit_length() > self.max_exponent_bits:
            raise CryptoError(
                f"exponent has {exponent.bit_length()} bits, table covers "
                f"{self.max_exponent_bits}"
            )
        result = 1
        mask = (1 << self.window) - 1
        block = 0
        while exponent:
            digit = exponent & mask
            if digit:
                result = (result * self._table[block][digit]) % self.modulus
            exponent >>= self.window
            block += 1
        return result


# --------------------------------------------------------------------------- generalized dlog
def _dlog_one_plus_base(base: int, s: int, value: int) -> int:
    """Extract ``i`` from ``(1 + base)^i mod base^(s+1)``.

    The iterative binomial algorithm of Damgård–Jurik Section 4.2, with the
    modulus ``n`` generalised to any *prime* base (used with ``base = p`` and
    ``base = q`` by the CRT decryption; every ``k!`` with ``k <= s`` is then
    invertible because ``k < base``).
    """
    i = 0
    for j in range(1, s + 1):
        base_to_j = base**j
        reduced = value % (base_to_j * base)
        if (reduced - 1) % base != 0:
            raise CryptoError("value is not of the form (1 + base)^i")
        t1 = ((reduced - 1) // base) % base_to_j
        t2 = i
        for k in range(2, j + 1):
            i = i - 1
            t2 = (t2 * i) % base_to_j
            factor = (t2 * base ** (k - 1)) % base_to_j
            t1 = (t1 - factor * mod_inverse(math.factorial(k), base_to_j)) % base_to_j
        i = t1
    return i


# --------------------------------------------------------------------------- per-key precomputation
class PrecomputedKey:
    """Per-key acceleration context for the Damgård–Jurik scheme.

    Built from a public key alone it caches the public recurring constants
    (``n^k mod n^{s+1}`` powers, factorial inverses for the ``(1+n)^m``
    binomial, the halving constant ``2^{-1} mod n^s``).  Built from a
    private key it additionally precomputes the CRT split: moduli
    ``p^{s+1}`` / ``q^{s+1}``, group orders, the decryption constants
    ``h_p`` / ``h_q`` and the Garner recombination inverses, which makes
    every private-key ``pow`` run on two half-width moduli with reduced
    exponents (~3–4× faster at realistic key sizes).
    """

    def __init__(self, public_key, p: int | None = None, q: int | None = None) -> None:
        self.public_key = public_key
        n = public_key.n
        s = public_key.s
        self.n = n
        self.s = s
        self.n_to_s = public_key.plaintext_modulus
        self.modulus = public_key.ciphertext_modulus
        # Public recurring constants of the (1+n)^m binomial expansion.
        self.n_powers = [pow(n, k, self.modulus) for k in range(s + 1)]
        self.factorial_inverses = [
            mod_inverse(math.factorial(k), self.modulus) if k else 1 for k in range(s + 1)
        ]
        #: The halving constant 2^{-1} mod n^s of the gossip exponent path.
        self.inv_two = mod_inverse(2, self.n_to_s)
        self.has_private = p is not None and q is not None
        if self.has_private:
            if p * q != n:
                raise CryptoError("p * q does not match the public modulus")
            self.p = p
            self.q = q
            self.p_to_s = p**s
            self.q_to_s = q**s
            self.p_to_s1 = self.p_to_s * p
            self.q_to_s1 = self.q_to_s * q
            #: Orders of the multiplicative groups mod p^{s+1} / q^{s+1}.
            self.order_p = self.p_to_s * (p - 1)
            self.order_q = self.q_to_s * (q - 1)
            # Garner recombination constants: ciphertext and plaintext spaces.
            self.p_to_s1_inv_q = mod_inverse(self.p_to_s1 % self.q_to_s1, self.q_to_s1)
            self.p_to_s_inv_q = mod_inverse(self.p_to_s % self.q_to_s, self.q_to_s)
            # Decryption constants: c^{p-1} mod p^{s+1} lands in the cyclic
            # subgroup generated by (1+p); dividing out the fixed discrete
            # log of (1+n)^{p-1} recovers the message residue directly.
            self.h_p = mod_inverse(
                _dlog_one_plus_base(p, s, pow(1 + n, p - 1, self.p_to_s1)), self.p_to_s
            )
            self.h_q = mod_inverse(
                _dlog_one_plus_base(q, s, pow(1 + n, q - 1, self.q_to_s1)), self.q_to_s
            )
            self._exponent_residues: dict[int, tuple[int, int]] = {}

    # ------------------------------------------------------------------ constructors
    @classmethod
    def from_private_key(cls, private_key) -> "PrecomputedKey":
        """Full precomputation (CRT included) from a Damgård–Jurik private key."""
        return cls(private_key.public_key, p=private_key.p, q=private_key.q)

    @classmethod
    def from_public_key(cls, public_key) -> "PrecomputedKey":
        """Public-constants-only precomputation (no CRT)."""
        return cls(public_key)

    # ------------------------------------------------------------------ public fast paths
    def one_plus_n_pow(self, exponent: int) -> int:
        """``(1 + n)^exponent mod n^{s+1}`` via the binomial with cached constants."""
        exponent = exponent % self.n_to_s
        modulus = self.modulus
        result = 1
        numerator = 1
        for k in range(1, self.s + 1):
            numerator = (numerator * ((exponent - (k - 1)) % modulus)) % modulus
            binomial = (numerator * self.factorial_inverses[k]) % modulus
            result = (result + binomial * self.n_powers[k]) % modulus
        return result

    # ------------------------------------------------------------------ private fast paths
    def _reduced_exponents(self, exponent: int) -> tuple[int, int]:
        """CRT residues of an exponent, cached because hot exponents recur.

        The exponents of a run are a small fixed set (``n^s`` for blinders,
        one ``2Δs_i`` per key share, the halving constant), so caching their
        residues removes two wide reductions from every private ``pow``.
        """
        cached = self._exponent_residues.get(exponent)
        if cached is None:
            cached = (exponent % self.order_p, exponent % self.order_q)
            if len(self._exponent_residues) < _EXPONENT_CACHE_LIMIT:
                self._exponent_residues[exponent] = cached
        return cached

    def _recombine(self, residue_p: int, residue_q: int) -> int:
        """Garner CRT recombination in the ciphertext space."""
        difference = ((residue_q - residue_p) * self.p_to_s1_inv_q) % self.q_to_s1
        return residue_p + self.p_to_s1 * difference

    def crt_pow(self, base: int, exponent: int) -> int:
        """``base^exponent mod n^{s+1}`` computed mod ``p^{s+1}`` and ``q^{s+1}``.

        Exact for every base coprime to ``n`` (ciphertexts always are); other
        bases, tiny exponents and public-only contexts fall back to ``pow``.
        The win comes from two half-width moduli plus order-reduced
        exponents, the textbook CRT speedup of RSA-family schemes.
        """
        if not self.has_private or 0 < exponent.bit_length() < _CRT_MIN_EXPONENT_BITS:
            return powmod(base, exponent, self.modulus)
        if math.gcd(base, self.n) != 1:
            return powmod(base, exponent, self.modulus)
        if exponent < 0:
            base = invert(base, self.modulus)
            exponent = -exponent
        exponent_p, exponent_q = self._reduced_exponents(exponent)
        residue_p = powmod(base % self.p_to_s1, exponent_p, self.p_to_s1)
        residue_q = powmod(base % self.q_to_s1, exponent_q, self.q_to_s1)
        return self._recombine(residue_p, residue_q)

    def decrypt(self, ciphertext: int) -> int:
        """CRT decryption: half-width moduli *and* half-size exponents.

        ``c^{p-1} mod p^{s+1}`` kills the ``r^{n^s}`` randomness outright
        (its order divides ``p^s (p-1)``), so the discrete log of the result
        is ``m (p-1) α_p mod p^s`` — one constant multiplication away from
        the message residue.  Combining the two residues with Garner yields
        exactly the plaintext the full-width ``c^λ`` decryption produces.
        """
        if not self.has_private:
            raise CryptoError("CRT decryption requires the private key")
        residue_p = (
            _dlog_one_plus_base(
                self.p, self.s, powmod(ciphertext % self.p_to_s1, self.p - 1, self.p_to_s1)
            )
            * self.h_p
        ) % self.p_to_s
        residue_q = (
            _dlog_one_plus_base(
                self.q, self.s, powmod(ciphertext % self.q_to_s1, self.q - 1, self.q_to_s1)
            )
            * self.h_q
        ) % self.q_to_s
        difference = ((residue_q - residue_p) * self.p_to_s_inv_q) % self.q_to_s
        return residue_p + self.p_to_s * difference


# --------------------------------------------------------------------------- blinder pools
class BlinderPool:
    """Amortized pool of Damgård–Jurik encryption blinders ``r^{n^s} mod n^{s+1}``.

    Hot-path ``encrypt`` and ``rerandomize`` take one precomputed blinder and
    pay a single bigint multiplication; the exponentiations are batched into
    :meth:`refill`, which a deployment runs in idle time (and which itself
    uses the CRT fast path when the pool holds the private context, as the
    in-process simulation backend does).

    ``mode="exact"`` (the default everywhere) draws its randomness through
    the same :func:`random_coprime` calls, in the same order, as fresh
    encryption — given the same randomness stream, pooled ciphertexts are
    bit-identical to unpooled ones.  ``mode="derived"`` instead raises one
    fixed random generator ``h = r₀^{n^s}`` to random exponents through a
    :class:`FixedBaseTable`, trading exact distribution equality for
    refills that cost one table walk instead of one exponentiation each.
    """

    #: Extra exponent bits of the derived mode over |n|, making the derived
    #: exponent distribution statistically close to uniform over <h>.
    DERIVED_SLACK_BITS = 64

    def __init__(
        self,
        precomputed: PrecomputedKey,
        batch_size: int = 32,
        mode: str = "exact",
        rng: Callable[[int], int] | None = None,
    ) -> None:
        if batch_size < 1:
            raise CryptoError(f"batch_size must be >= 1, got {batch_size}")
        if mode not in ("exact", "derived"):
            raise CryptoError(f"unknown blinder pool mode {mode!r}")
        self.precomputed = precomputed
        self.batch_size = batch_size
        self.mode = mode
        self._random_coprime = rng if rng is not None else random_coprime
        self._pool: deque[int] = deque()
        self.generated = 0
        self.served = 0
        # One condition guards the pool *and* serializes blinder generation:
        # every randomness draw happens under it, in append order, so the
        # FIFO pool consumes the randomness stream exactly like fresh
        # encryption would — whether a blinder was generated synchronously
        # on exhaustion or ahead of time by the background refill thread.
        self._condition = threading.Condition()
        self._refill_thread: threading.Thread | None = None
        self._refill_stop: threading.Event | None = None
        self.low_water = max(1, batch_size // 2)
        self._table: FixedBaseTable | None = None
        if mode == "derived":
            generator = precomputed.crt_pow(
                self._random_coprime(precomputed.n), precomputed.n_to_s
            )
            self._table = FixedBaseTable(
                generator,
                precomputed.modulus,
                precomputed.n.bit_length() + self.DERIVED_SLACK_BITS,
            )

    def __len__(self) -> int:
        return len(self._pool)

    def _fresh_blinder(self) -> int:
        if self._table is not None:
            import secrets

            exponent = secrets.randbits(self.precomputed.n.bit_length() + self.DERIVED_SLACK_BITS)
            return self._table.pow(exponent)
        randomness = self._random_coprime(self.precomputed.n)
        return self.precomputed.crt_pow(randomness, self.precomputed.n_to_s)

    def refill(self, count: int | None = None) -> None:
        """Precompute *count* blinders (one batch when omitted)."""
        count = self.batch_size if count is None else count
        with self._condition:
            self._refill_locked(count)

    def _refill_locked(self, count: int) -> None:
        for _ in range(count):
            self._pool.append(self._fresh_blinder())
        self.generated += count

    def take(self) -> int:
        """Pop the oldest blinder, refilling a batch first when empty.

        FIFO order keeps the randomness-stream consumption identical to
        fresh encryption: the i-th pooled operation uses exactly the i-th
        drawn randomness.  With the background refill thread running, the
        pool rarely empties and this is one lock acquisition plus one
        ``popleft``; dropping to the low-water mark wakes the refiller.
        """
        with self._condition:
            if not self._pool:
                self._refill_locked(self.batch_size)
            self.served += 1
            blinder = self._pool.popleft()
            if self._refill_thread is not None and len(self._pool) <= self.low_water:
                self._condition.notify_all()
            return blinder

    def preload(self, blinders: Sequence[int]) -> None:
        """Append externally precomputed blinders to the pool.

        This is the persisted-pool-file path: blinders generated by an
        earlier offline phase re-enter the pool without drawing from this
        process's randomness stream.  Preloaded blinders therefore break
        the exact-mode bit-identity with the unpooled path — callers only
        use this behind the explicit ``crypto.pool_file`` opt-in.
        """
        with self._condition:
            for blinder in blinders:
                self._pool.append(int(blinder))
            self.generated += len(blinders)
            self._condition.notify_all()

    def reset(self) -> None:
        """Discard every pooled blinder (counters untouched).

        A process that inherits a pool through ``fork`` MUST call this
        before encrypting: two processes serving the same precomputed
        blinders would produce ciphertexts with identical randomness, and
        the quotient of two such ciphertexts reveals the plaintext
        difference — exactly the linkability the re-randomization layer
        exists to prevent.  Post-fork draws come from the process's own
        entropy, so refilled pools diverge immediately.
        """
        with self._condition:
            self._pool.clear()

    # ------------------------------------------------------------------ background refill
    def start_background_refill(self, low_water: int | None = None) -> None:
        """Keep the pool topped up from a daemon worker thread.

        Real deployments refill blinder pools in idle time; this moves the
        batch exponentiations off the encryption hot path.  Generation
        stays under the pool lock, one blinder at a time, so the exact-mode
        randomness stream is consumed in precisely the order the
        synchronous path consumes it — pooled ciphertexts remain
        bit-identical to fresh ones given the same stream.  Idempotent; a
        no-op when the thread is already running.
        """
        with self._condition:
            if low_water is not None:
                if low_water < 1:
                    raise CryptoError(f"low_water must be >= 1, got {low_water}")
                self.low_water = low_water
            if self._refill_thread is not None:
                return
            # Each thread gets its own stop event: even if a stop times out
            # with the old thread wedged behind the lock, a later start can
            # never revive it — its event stays set forever and a fresh
            # thread runs on a fresh event.
            stop = threading.Event()
            self._refill_stop = stop
            self._refill_thread = threading.Thread(
                target=self._background_refill_loop,
                args=(stop,),
                name="blinder-pool-refill",
                daemon=True,
            )
            self._refill_thread.start()

    def stop_background_refill(self) -> None:
        """Stop the refill thread (blocks until it exits); idempotent."""
        with self._condition:
            thread = self._refill_thread
            stop = self._refill_stop
            if thread is None:
                return
            stop.set()
            self._condition.notify_all()
        thread.join(timeout=30.0)
        with self._condition:
            self._refill_thread = None
            self._refill_stop = None

    def _background_refill_loop(self, stop: threading.Event) -> None:
        # The lock is re-acquired for every single blinder: a concurrent
        # take() waits at most one exponentiation, never a whole batch, and
        # draw order == append order == serve order (stream identity).
        while True:
            with self._condition:
                if stop.is_set():
                    return
                if len(self._pool) >= self.low_water + self.batch_size:
                    self._condition.wait(timeout=0.1)
                    continue
                self._refill_locked(1)
                self._condition.notify_all()


def plan_pool_batch(expected_per_round: int, minimum: int = 16, maximum: int = 1024) -> int:
    """Pool batch size for an expected number of hot-path operations per round.

    The analysis cost model knows how many encryptions one protocol round
    performs (:attr:`~repro.analysis.costs.ProtocolWorkload.encryptions_per_iteration`);
    refilling in batches of that size means at most one refill burst per
    round while bounding the precomputed-state memory.
    """
    if expected_per_round < 1:
        raise CryptoError(
            f"expected_per_round must be >= 1, got {expected_per_round}"
        )
    return max(minimum, min(maximum, expected_per_round))
