"""Threshold (collaborative) decryption for the Damgård–Jurik scheme.

Chiaroscuro requires that "the decryption is performed collaboratively by any
subset of participants provided it is sufficiently large" (Section II.A of
the paper).  This module implements the standard threshold variant of
Damgård–Jurik:

* a trusted dealer (run once, before the protocol, e.g. by a setup authority
  or via a distributed key-generation ceremony that is out of scope here)
  computes the secret exponent d with d ≡ 0 (mod λ) and d ≡ 1 (mod n^s) and
  splits it into *l* Shamir shares with reconstruction threshold *t*;
* each participant holding share s_i produces the partial decryption
  c_i = c^{2 Δ s_i} mod n^{s+1}, where Δ = l! ;
* any *t* partial decryptions are combined with Δ-scaled integer Lagrange
  coefficients, yielding c^{4 Δ² d} = (1 + n)^{4 Δ² m}; the discrete log is
  extracted and multiplied by (4 Δ²)^{-1} mod n^s to recover m.

The Δ scaling keeps every exponent an integer, so no arithmetic modulo the
(secret) group order is ever needed by the combiners.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from typing import TYPE_CHECKING

from ..exceptions import DecryptionError, KeyGenerationError, ThresholdError
from .damgard_jurik import (
    DamgardJurikPrivateKey,
    DamgardJurikPublicKey,
    dlog_one_plus_n,
    generate_keypair,
)
from .fastmath import multi_pow
from .math_utils import crt_pair, mod_inverse, random_below

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .fastmath import PrecomputedKey


@dataclass(frozen=True)
class ThresholdPublicKey:
    """Public material of the threshold scheme.

    Attributes
    ----------
    public_key:
        The underlying Damgård–Jurik public key.
    threshold:
        Minimum number of distinct partial decryptions required.
    n_shares:
        Total number of key shares in circulation.
    """

    public_key: DamgardJurikPublicKey
    threshold: int
    n_shares: int

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise KeyGenerationError("threshold must be >= 1")
        if self.n_shares < self.threshold:
            raise KeyGenerationError("n_shares must be >= threshold")

    @property
    def delta(self) -> int:
        """Δ = n_shares!, the scaling factor of the integer Lagrange coefficients."""
        return math.factorial(self.n_shares)


@dataclass(frozen=True)
class KeyShare:
    """One participant's share of the secret decryption exponent."""

    index: int  # 1-based share index (the evaluation point of the polynomial)
    value: int

    def __post_init__(self) -> None:
        if self.index < 1:
            raise KeyGenerationError("share indices are 1-based")


@dataclass(frozen=True)
class PartialDecryption:
    """A partial decryption c^{2 Δ s_i} produced by the holder of share i."""

    index: int
    value: int


def _shamir_share(
    secret: int, modulus: int, threshold: int, n_shares: int
) -> list[KeyShare]:
    """Split *secret* into *n_shares* Shamir shares of threshold *threshold*.

    The sharing polynomial has degree threshold-1 and random coefficients in
    [0, modulus).  Shares are reduced modulo *modulus*; combination works in
    the exponent where arithmetic is modulo n^s * λ (a divisor of *modulus*'s
    multiple — see :func:`combine_partial_decryptions`).
    """
    coefficients = [secret % modulus] + [random_below(modulus) for _ in range(threshold - 1)]
    shares = []
    for index in range(1, n_shares + 1):
        value = 0
        for power, coefficient in enumerate(coefficients):
            value = (value + coefficient * pow(index, power, modulus)) % modulus
        shares.append(KeyShare(index=index, value=value))
    return shares


def generate_threshold_keypair(
    key_bits: int = 2048,
    s: int = 1,
    threshold: int = 3,
    n_shares: int = 8,
) -> tuple[ThresholdPublicKey, list[KeyShare], DamgardJurikPrivateKey]:
    """Generate a threshold Damgård–Jurik key: public key, shares, dealer key.

    The dealer's non-threshold private key is returned as well; production
    deployments would discard it after the sharing, but tests and baselines
    use it as an oracle to validate threshold decryptions.
    """
    if threshold > n_shares:
        raise KeyGenerationError(
            f"threshold ({threshold}) cannot exceed the number of shares ({n_shares})"
        )
    public, private = generate_keypair(key_bits=key_bits, s=s)
    n_to_s = public.plaintext_modulus
    lam = private.lam
    if math.gcd(lam, n_to_s) != 1:
        raise KeyGenerationError("lambda and n^s are not coprime; regenerate the key")
    # d ≡ 0 (mod λ) and d ≡ 1 (mod n^s): kills the randomness, keeps the message.
    d = crt_pair(0, lam, 1, n_to_s)
    sharing_modulus = n_to_s * lam
    shares = _shamir_share(d, sharing_modulus, threshold, n_shares)
    threshold_public = ThresholdPublicKey(public_key=public, threshold=threshold, n_shares=n_shares)
    return threshold_public, shares, private


def partial_decrypt(
    threshold_public: ThresholdPublicKey,
    share: KeyShare,
    ciphertext: int,
    precomputed: "PrecomputedKey | None" = None,
) -> PartialDecryption:
    """Compute the partial decryption of *ciphertext* with one key share.

    A real share holder only knows the public modulus and computes the full
    ``c^{2Δs_i} mod n^{s+1}``.  The in-process simulation, which holds the
    dealer key anyway, may pass a private
    :class:`~repro.crypto.fastmath.PrecomputedKey` to evaluate the same
    power mod ``p^{s+1}`` / ``q^{s+1}`` with order-reduced exponents — the
    produced partial decryption is the identical integer.
    """
    public = threshold_public.public_key
    modulus = public.ciphertext_modulus
    if not 0 <= ciphertext < modulus:
        raise DecryptionError("ciphertext out of range")
    exponent = 2 * threshold_public.delta * share.value
    if precomputed is not None:
        value = precomputed.crt_pow(ciphertext, exponent)
    else:
        value = pow(ciphertext, exponent, modulus)
    return PartialDecryption(index=share.index, value=value)


def _integer_lagrange_coefficient(
    delta: int, indices: Sequence[int], target_index: int
) -> int:
    """Δ-scaled Lagrange coefficient λ_{0,i} * Δ, an exact integer.

    With Δ = n_shares! every factor of the denominator divides Δ, so the
    result is an integer even though the plain Lagrange coefficient is a
    rational number.
    """
    numerator = delta
    denominator = 1
    for other in indices:
        if other == target_index:
            continue
        numerator *= -other
        denominator *= target_index - other
    if numerator % denominator != 0:
        raise ThresholdError("Lagrange coefficient is not an integer; check Δ")
    return numerator // denominator


def combine_partial_decryptions(
    threshold_public: ThresholdPublicKey,
    partials: Sequence[PartialDecryption] | Mapping[int, int],
    multiexp: bool = True,
) -> int:
    """Combine at least *threshold* partial decryptions into the plaintext.

    The Δ-scaled Lagrange accumulation ``Π cᵢ^{2λᵢΔ}`` is evaluated with
    Straus simultaneous multi-exponentiation (one shared squaring chain for
    all shares) unless *multiexp* is disabled, in which case the seed's
    one-``pow``-per-share loop runs; both produce the same integer.

    Raises :class:`ThresholdError` when fewer than *threshold* distinct
    partial decryptions are supplied.
    """
    public = threshold_public.public_key
    modulus = public.ciphertext_modulus
    if isinstance(partials, Mapping):
        entries = [PartialDecryption(index=index, value=value) for index, value in partials.items()]
    else:
        entries = list(partials)
    seen: dict[int, PartialDecryption] = {}
    for entry in entries:
        if entry.index in seen and seen[entry.index].value != entry.value:
            raise ThresholdError(f"conflicting partial decryptions for share {entry.index}")
        seen[entry.index] = entry
    if len(seen) < threshold_public.threshold:
        raise ThresholdError(
            f"need at least {threshold_public.threshold} partial decryptions, got {len(seen)}"
        )
    # Any subset of exactly `threshold` distinct shares suffices.
    chosen = sorted(seen.values(), key=lambda entry: entry.index)[: threshold_public.threshold]
    indices = [entry.index for entry in chosen]
    delta = threshold_public.delta
    coefficients = [
        2 * _integer_lagrange_coefficient(delta, indices, entry.index) for entry in chosen
    ]
    if multiexp:
        combined = multi_pow([entry.value for entry in chosen], coefficients, modulus)
    else:
        combined = 1
        for entry, coefficient in zip(chosen, coefficients):
            combined = (combined * pow(entry.value, coefficient, modulus)) % modulus
    # combined = c^{4 Δ² d} = (1 + n)^{4 Δ² m} mod n^{s+1}
    exponent = dlog_one_plus_n(public, combined)
    scaling = (4 * delta * delta) % public.plaintext_modulus
    return (exponent * mod_inverse(scaling, public.plaintext_modulus)) % public.plaintext_modulus


def threshold_decrypt(
    threshold_public: ThresholdPublicKey,
    shares: Sequence[KeyShare],
    ciphertext: int,
) -> int:
    """Convenience wrapper: partially decrypt with *shares* then combine.

    This mirrors what the Chiaroscuro computation step does across
    participants, but in-process; the protocol itself calls
    :func:`partial_decrypt` on distinct simulated devices.
    """
    partials = [partial_decrypt(threshold_public, share, ciphertext) for share in shares]
    return combine_partial_decryptions(threshold_public, partials)
