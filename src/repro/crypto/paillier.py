"""The Paillier additively-homomorphic cryptosystem.

Paillier is the degree-1 special case of the Damgård–Jurik scheme the paper
uses.  It is implemented separately both as an accessible reference and as a
cross-check for the generalised implementation (the two must agree on the
degree-1 plaintext space).

Scheme summary (Paillier 1999, simplified variant with g = n + 1):

* key generation: n = p*q with p, q large primes, λ = lcm(p-1, q-1),
  μ = λ^{-1} mod n;
* encryption of m in Z_n with randomness r in Z_n^*:
  c = (1 + n)^m * r^n mod n^2;
* decryption: m = L(c^λ mod n^2) * μ mod n, where L(u) = (u - 1) / n;
* additive homomorphism: c1 * c2 encrypts m1 + m2; c^k encrypts k*m.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from functools import lru_cache

from ..exceptions import DecryptionError, EncryptionError, KeyGenerationError
from .math_utils import crt_pair, generate_distinct_primes, lcm, mod_inverse, random_coprime


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public key: the modulus *n* (g is fixed to n + 1)."""

    n: int

    @property
    def n_squared(self) -> int:
        """Ciphertext modulus n^2."""
        return self.n * self.n

    @property
    def plaintext_modulus(self) -> int:
        """Size of the plaintext space (Z_n)."""
        return self.n

    @property
    def key_bits(self) -> int:
        """Bit length of the modulus."""
        return self.n.bit_length()


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private key: λ = lcm(p-1, q-1) and μ = λ^{-1} mod n.

    The primes are kept (``0`` for legacy key material) so decryption can
    take the CRT fast path; :func:`decrypt` falls back to the classic
    full-width ``c^λ mod n²`` when they are absent.
    """

    public_key: PaillierPublicKey
    lam: int
    mu: int
    p: int = 0
    q: int = 0


def generate_paillier_keypair(key_bits: int = 2048) -> tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a Paillier key pair with a modulus of roughly *key_bits* bits."""
    if key_bits < 16:
        raise KeyGenerationError(f"key_bits must be at least 16, got {key_bits}")
    prime_bits = key_bits // 2
    for _ in range(64):
        p, q = generate_distinct_primes(prime_bits)
        n = p * q
        lam = lcm(p - 1, q - 1)
        if math.gcd(n, lam) != 1:
            continue  # rare for random primes; retry to keep decryption valid
        public = PaillierPublicKey(n)
        mu = mod_inverse(lam, n)
        return public, PaillierPrivateKey(public, lam, mu, p=p, q=q)
    raise KeyGenerationError("could not generate a valid Paillier key pair")


def encrypt(public_key: PaillierPublicKey, plaintext: int, randomness: int | None = None) -> int:
    """Encrypt *plaintext* (an integer in Z_n) under *public_key*."""
    n = public_key.n
    n_squared = public_key.n_squared
    if not 0 <= plaintext < n:
        raise EncryptionError(f"plaintext must be in [0, n), got {plaintext}")
    if randomness is None:
        randomness = random_coprime(n)
    elif math.gcd(randomness, n) != 1:
        raise EncryptionError("randomness must be coprime with n")
    # (1 + n)^m mod n^2 == 1 + m*n mod n^2, which avoids one modular exponentiation.
    g_to_m = (1 + plaintext * n) % n_squared
    return (g_to_m * pow(randomness, n, n_squared)) % n_squared


def _crt_half_decrypt(ciphertext: int, prime: int, n: int) -> int:
    """Message residue mod *prime*: ``L_p(c^{p-1} mod p²) · h_p mod p``.

    Exponent ``p-1`` annihilates the ``r^n`` randomness mod p² outright, so
    the half-size exponent and half-width modulus recover the same residue
    the full ``c^λ`` decryption would — the classic Paillier CRT split.
    """
    prime_squared = prime * prime
    u = pow(ciphertext % prime_squared, prime - 1, prime_squared)
    l_value = (u - 1) // prime
    return (l_value * _crt_constant(prime, n)) % prime


@lru_cache(maxsize=64)
def _crt_constant(prime: int, n: int) -> int:
    """``h_p = L_p((1+n)^{p-1} mod p²)^{-1} mod p``, fixed per key half."""
    prime_squared = prime * prime
    return mod_inverse((pow(1 + n, prime - 1, prime_squared) - 1) // prime, prime)


def decrypt(private_key: PaillierPrivateKey, ciphertext: int, crt: bool = True) -> int:
    """Decrypt *ciphertext* with *private_key* and return the plaintext in Z_n.

    When the private key carries its primes (every freshly generated key
    does) the decryption runs mod p² and q² with exponents p-1 / q-1 and
    recombines — ~3–4× faster than ``c^λ mod n²`` for the same plaintext.
    Pass ``crt=False`` to force the classic full-width path.
    """
    public = private_key.public_key
    n, n_squared = public.n, public.n_squared
    if not 0 <= ciphertext < n_squared:
        raise DecryptionError(f"ciphertext must be in [0, n^2), got {ciphertext}")
    if math.gcd(ciphertext, n_squared) != 1:
        raise DecryptionError("ciphertext is not invertible modulo n^2")
    if crt and private_key.p and private_key.q:
        p, q = private_key.p, private_key.q
        m_p = _crt_half_decrypt(ciphertext, p, n)
        m_q = _crt_half_decrypt(ciphertext, q, n)
        return crt_pair(m_p, p, m_q, q)
    u = pow(ciphertext, private_key.lam, n_squared)
    l_value = (u - 1) // n
    return (l_value * private_key.mu) % n


def add_ciphertexts(public_key: PaillierPublicKey, *ciphertexts: int) -> int:
    """Homomorphic addition: the product of ciphertexts encrypts the sum."""
    if not ciphertexts:
        raise EncryptionError("add_ciphertexts requires at least one ciphertext")
    result = 1
    for ciphertext in ciphertexts:
        result = (result * ciphertext) % public_key.n_squared
    return result


def add_plaintext(public_key: PaillierPublicKey, ciphertext: int, constant: int) -> int:
    """Homomorphically add a public constant to an encrypted value."""
    constant = constant % public_key.n
    g_to_k = (1 + constant * public_key.n) % public_key.n_squared
    return (ciphertext * g_to_k) % public_key.n_squared


def multiply_plaintext(public_key: PaillierPublicKey, ciphertext: int, factor: int) -> int:
    """Homomorphically multiply an encrypted value by a public integer factor."""
    factor = factor % public_key.n
    return pow(ciphertext, factor, public_key.n_squared)


def rerandomize(public_key: PaillierPublicKey, ciphertext: int) -> int:
    """Refresh the randomness of a ciphertext without changing its plaintext."""
    blinder = pow(random_coprime(public_key.n), public_key.n, public_key.n_squared)
    return (ciphertext * blinder) % public_key.n_squared


def encrypt_zero(public_key: PaillierPublicKey) -> int:
    """A fresh encryption of zero (used to initialise the non-assigned means)."""
    return encrypt(public_key, 0)
