"""Synthetic NUMED-like tumor-growth time-series.

The demonstration's second use-case clusters tumor-size time-series generated
from the tumor-growth-inhibition (TGI) model of Claret et al. (J. Clin. Onc.
2013, reference [9] of the paper).  The model describes tumor size y(t) under
treatment as the interplay of an exponential natural growth and an
exponentially-waning drug-induced shrinkage:

    dy/dt = KL * y(t) - KD(t) * y(t),        KD(t) = KD0 * exp(-lambda * t)

whose closed form is

    y(t) = y0 * exp( KL * t - (KD0 / lambda) * (1 - exp(-lambda * t)) ).

Patients are drawn from *response archetypes* (responder, stable disease,
progressive disease, relapse) that differ by their (KL, KD0, lambda) ranges,
which yields the cluster structure the demonstration displays over twenty
weeks of follow-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import check_non_negative_float, check_positive_float, check_positive_int
from ..exceptions import DatasetError
from ..timeseries import TimeSeries, TimeSeriesCollection


@dataclass(frozen=True)
class ResponseArchetype:
    """Parameter ranges of a class of patients under the Claret TGI model.

    Rates are expressed per week.  ``growth_rate`` is KL, ``decay_rate`` is
    KD0 and ``resistance_rate`` is lambda (how quickly the drug effect wanes).
    Each range is ``(low, high)`` and per-patient values are drawn uniformly.
    """

    name: str
    growth_rate: tuple[float, float]
    decay_rate: tuple[float, float]
    resistance_rate: tuple[float, float]
    baseline_size_mm: tuple[float, float] = (30.0, 90.0)


#: Default response archetypes spanning the classic RECIST-like categories.
DEFAULT_RESPONSE_ARCHETYPES: tuple[ResponseArchetype, ...] = (
    ResponseArchetype(
        "responder", growth_rate=(0.005, 0.02), decay_rate=(0.10, 0.20),
        resistance_rate=(0.01, 0.04),
    ),
    ResponseArchetype(
        "stable", growth_rate=(0.02, 0.04), decay_rate=(0.04, 0.08),
        resistance_rate=(0.02, 0.06),
    ),
    ResponseArchetype(
        "progressive", growth_rate=(0.05, 0.09), decay_rate=(0.00, 0.03),
        resistance_rate=(0.05, 0.12),
    ),
    ResponseArchetype(
        "relapse", growth_rate=(0.04, 0.07), decay_rate=(0.12, 0.22),
        resistance_rate=(0.15, 0.30),
    ),
)


@dataclass(frozen=True)
class NUMEDConfig:
    """Parameters of the synthetic NUMED-like generator.

    Attributes
    ----------
    n_patients:
        Number of generated patients (one series per patient).
    n_weeks:
        Follow-up duration; the demo shows tumor growth "over twenty weeks".
    measurements_per_week:
        Sampling rate of the tumor-size measurements.
    noise_std_mm:
        Standard deviation of the measurement noise, in millimetres.
    archetypes:
        Response-archetype catalogue.
    archetype_weights:
        Optional relative frequency of each archetype (uniform when omitted).
    seed:
        Seed of the generator.
    """

    n_patients: int = 200
    n_weeks: int = 20
    measurements_per_week: int = 1
    noise_std_mm: float = 1.0
    archetypes: tuple[ResponseArchetype, ...] = DEFAULT_RESPONSE_ARCHETYPES
    archetype_weights: tuple[float, ...] | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.n_patients, "n_patients")
        check_positive_int(self.n_weeks, "n_weeks")
        check_positive_int(self.measurements_per_week, "measurements_per_week")
        check_non_negative_float(self.noise_std_mm, "noise_std_mm")
        if not self.archetypes:
            raise DatasetError("at least one response archetype is required")
        if self.archetype_weights is not None:
            if len(self.archetype_weights) != len(self.archetypes):
                raise DatasetError(
                    "archetype_weights must have one entry per archetype "
                    f"({len(self.archetype_weights)} != {len(self.archetypes)})"
                )
            if any(weight < 0 for weight in self.archetype_weights):
                raise DatasetError("archetype_weights must be non-negative")
            if sum(self.archetype_weights) <= 0:
                raise DatasetError("archetype_weights must not all be zero")

    @property
    def series_length(self) -> int:
        """Number of points of every generated series."""
        return self.n_weeks * self.measurements_per_week


def claret_tumor_size(
    times_weeks: np.ndarray,
    baseline_size: float,
    growth_rate: float,
    decay_rate: float,
    resistance_rate: float,
) -> np.ndarray:
    """Closed-form Claret tumor-growth-inhibition trajectory.

    Parameters
    ----------
    times_weeks:
        Measurement times in weeks (>= 0).
    baseline_size:
        Tumor size at t=0 (millimetres).
    growth_rate:
        Natural exponential growth rate KL (per week).
    decay_rate:
        Initial drug-induced shrinkage rate KD0 (per week).
    resistance_rate:
        Rate lambda at which the drug effect wanes (per week); 0 means a
        constant drug effect.
    """
    times = np.asarray(times_weeks, dtype=float)
    if np.any(times < 0):
        raise DatasetError("measurement times must be non-negative")
    check_positive_float(baseline_size, "baseline_size")
    check_non_negative_float(growth_rate, "growth_rate")
    check_non_negative_float(decay_rate, "decay_rate")
    check_non_negative_float(resistance_rate, "resistance_rate")
    if resistance_rate == 0.0:
        drug_term = decay_rate * times
    else:
        drug_term = (decay_rate / resistance_rate) * (1.0 - np.exp(-resistance_rate * times))
    return baseline_size * np.exp(growth_rate * times - drug_term)


def generate_numed_like(
    config: NUMEDConfig | None = None, **overrides: object
) -> TimeSeriesCollection:
    """Generate a NUMED-like collection of tumor-size time-series.

    Returns
    -------
    TimeSeriesCollection
        One series per patient; metadata carries ``archetype`` (ground truth),
        ``patient`` (index) and the drawn model parameters.
    """
    if config is None:
        config = NUMEDConfig(**overrides)  # type: ignore[arg-type]
    elif overrides:
        raise DatasetError("pass either a NUMEDConfig or keyword overrides, not both")
    rng = np.random.default_rng(config.seed)
    n_points = config.series_length
    times = np.arange(n_points, dtype=float) / config.measurements_per_week
    weights = None
    if config.archetype_weights is not None:
        total = float(sum(config.archetype_weights))
        weights = [weight / total for weight in config.archetype_weights]
    archetype_indices = rng.choice(len(config.archetypes), size=config.n_patients, p=weights)

    series: list[TimeSeries] = []
    for patient, archetype_index in enumerate(archetype_indices):
        archetype = config.archetypes[int(archetype_index)]
        baseline = float(rng.uniform(*archetype.baseline_size_mm))
        growth = float(rng.uniform(*archetype.growth_rate))
        decay = float(rng.uniform(*archetype.decay_rate))
        resistance = float(rng.uniform(*archetype.resistance_rate))
        trajectory = claret_tumor_size(times, baseline, growth, decay, resistance)
        if config.noise_std_mm > 0:
            trajectory = trajectory + rng.normal(0.0, config.noise_std_mm, size=n_points)
        trajectory = np.clip(trajectory, 0.0, None)
        series.append(
            TimeSeries(
                trajectory,
                series_id=f"patient-{patient:05d}",
                metadata={
                    "archetype": archetype.name,
                    "patient": patient,
                    "baseline_size_mm": baseline,
                    "growth_rate": growth,
                    "decay_rate": decay,
                    "resistance_rate": resistance,
                },
            )
        )
    return TimeSeriesCollection(series, name="numed-synthetic")
