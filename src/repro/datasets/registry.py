"""Dataset registry: look up generators by name.

The demonstration lets the audience switch use-case ("electrical consumption
time-series or tumor-size growth"); the registry is the programmatic
equivalent, so examples and benchmarks can select a dataset with a string.

Besides the plain name -> factory lookup, the registry knows which generator
parameter controls the *population size* of each dataset (``n_households``
for CER-like data, ``n_patients`` for NUMED-like data, ``n_series`` for the
synthetic generators).  :func:`load_dataset_for_population` is the single
place where a requested participant count is validated and translated into
generator parameters — the CLI and the experiment subsystem both go through
it instead of hand-rolling per-dataset branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..exceptions import DatasetError
from ..timeseries import TimeSeriesCollection
from .cer import generate_cer_like
from .numed import generate_numed_like
from .synthetic import generate_gaussian_clusters

DatasetFactory = Callable[..., TimeSeriesCollection]


@dataclass(frozen=True)
class DatasetEntry:
    """One registered dataset: its factory plus population metadata.

    ``size_parameter`` names the generator keyword that sets the number of
    series (one per participant); ``None`` means the dataset has a fixed
    size and cannot be scaled to a population.  ``population_defaults`` are
    extra generator keywords applied by
    :func:`load_dataset_for_population` (callers can override them), chosen
    so that population-driven loads stay small and fast by default.
    """

    factory: DatasetFactory
    size_parameter: str | None = None
    population_defaults: Mapping[str, object] = field(default_factory=dict)


_REGISTRY: dict[str, DatasetEntry] = {}


def register_dataset(
    name: str,
    factory: DatasetFactory,
    overwrite: bool = False,
    size_parameter: str | None = None,
    population_defaults: Mapping[str, object] | None = None,
) -> None:
    """Register *factory* under *name*.

    Raises :class:`DatasetError` if the name is already taken and
    ``overwrite`` is false.
    """
    if not name:
        raise DatasetError("dataset name must not be empty")
    if name in _REGISTRY and not overwrite:
        raise DatasetError(f"dataset {name!r} is already registered")
    _REGISTRY[name] = DatasetEntry(
        factory=factory,
        size_parameter=size_parameter,
        population_defaults=dict(population_defaults or {}),
    )


def available_datasets() -> tuple[str, ...]:
    """Names of all registered datasets."""
    return tuple(sorted(_REGISTRY))


def _entry(name: str) -> DatasetEntry:
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {list(available_datasets())}"
        ) from exc


def load_dataset(name: str, **parameters: object) -> TimeSeriesCollection:
    """Instantiate the dataset registered under *name* with *parameters*."""
    return _entry(name).factory(**parameters)


def dataset_size_parameter(name: str) -> str | None:
    """The generator keyword controlling *name*'s population size (or None)."""
    return _entry(name).size_parameter


def dataset_population_defaults(name: str) -> dict[str, object]:
    """The extra generator keywords population-driven loads apply by default."""
    return dict(_entry(name).population_defaults)


def load_dataset_for_population(
    name: str,
    n_participants: int,
    seed: int = 0,
    **overrides: object,
) -> TimeSeriesCollection:
    """Instantiate *name* with exactly *n_participants* series.

    This is the one place where a participant count is validated and mapped
    onto the dataset's size parameter: the generated collection is checked
    to contain exactly one series per participant, so a mismatch between
    ``--participants`` and the generator parameters cannot silently produce
    a run on a different population.

    Parameters
    ----------
    name:
        Registered dataset name.
    n_participants:
        Requested population size (must be a positive integer).
    seed:
        Generator seed.
    overrides:
        Extra generator keywords; they take precedence over the registered
        ``population_defaults`` but must not try to set the size parameter
        or the seed through the back door.
    """
    if not isinstance(n_participants, int) or isinstance(n_participants, bool) \
            or n_participants <= 0:
        raise DatasetError(
            f"n_participants must be a positive integer, got {n_participants!r}"
        )
    entry = _entry(name)
    if entry.size_parameter is None:
        raise DatasetError(
            f"dataset {name!r} does not declare a population size parameter; "
            "register it with size_parameter=... or load it with load_dataset()"
        )
    if entry.size_parameter in overrides:
        raise DatasetError(
            f"dataset parameter {entry.size_parameter!r} is derived from the "
            "population argument; pass it there instead"
        )
    parameters: dict[str, object] = dict(entry.population_defaults)
    parameters.update(overrides)
    parameters[entry.size_parameter] = n_participants
    parameters["seed"] = seed
    collection = entry.factory(**parameters)
    if len(collection) != n_participants:
        raise DatasetError(
            f"dataset {name!r} produced {len(collection)} series for a "
            f"population of {n_participants}"
        )
    return collection


def _register_builtin() -> None:
    register_dataset(
        "cer", generate_cer_like, overwrite=True,
        size_parameter="n_households",
        population_defaults={"n_days": 1, "readings_per_day": 24},
    )
    register_dataset(
        "numed", generate_numed_like, overwrite=True,
        size_parameter="n_patients",
        population_defaults={"n_weeks": 20},
    )
    register_dataset(
        "gaussian", generate_gaussian_clusters, overwrite=True,
        size_parameter="n_series",
        population_defaults={"series_length": 24},
    )


_register_builtin()
