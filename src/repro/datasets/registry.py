"""Dataset registry: look up generators by name.

The demonstration lets the audience switch use-case ("electrical consumption
time-series or tumor-size growth"); the registry is the programmatic
equivalent, so examples and benchmarks can select a dataset with a string.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..exceptions import DatasetError
from ..timeseries import TimeSeriesCollection
from .cer import generate_cer_like
from .numed import generate_numed_like
from .synthetic import generate_gaussian_clusters

DatasetFactory = Callable[..., TimeSeriesCollection]

_REGISTRY: dict[str, DatasetFactory] = {}


def register_dataset(name: str, factory: DatasetFactory, overwrite: bool = False) -> None:
    """Register *factory* under *name*.

    Raises :class:`DatasetError` if the name is already taken and
    ``overwrite`` is false.
    """
    if not name:
        raise DatasetError("dataset name must not be empty")
    if name in _REGISTRY and not overwrite:
        raise DatasetError(f"dataset {name!r} is already registered")
    _REGISTRY[name] = factory


def available_datasets() -> tuple[str, ...]:
    """Names of all registered datasets."""
    return tuple(sorted(_REGISTRY))


def load_dataset(name: str, **parameters: object) -> TimeSeriesCollection:
    """Instantiate the dataset registered under *name* with *parameters*."""
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {list(available_datasets())}"
        ) from exc
    return factory(**parameters)


def _register_builtin() -> None:
    register_dataset("cer", generate_cer_like, overwrite=True)
    register_dataset("numed", generate_numed_like, overwrite=True)
    register_dataset("gaussian", generate_gaussian_clusters, overwrite=True)


_register_builtin()
