"""Dataset generators: CER-like electricity, NUMED-like tumor growth, synthetic."""

from .cer import (
    DEFAULT_ARCHETYPES,
    CERConfig,
    HouseholdArchetype,
    generate_cer_like,
)
from .numed import (
    DEFAULT_RESPONSE_ARCHETYPES,
    NUMEDConfig,
    ResponseArchetype,
    claret_tumor_size,
    generate_numed_like,
)
from .registry import (
    DatasetEntry,
    available_datasets,
    dataset_population_defaults,
    dataset_size_parameter,
    load_dataset,
    load_dataset_for_population,
    register_dataset,
)
from .synthetic import (
    GaussianClustersConfig,
    generate_constant_series,
    generate_gaussian_clusters,
    generate_two_level_series,
)

__all__ = [
    "CERConfig",
    "HouseholdArchetype",
    "DEFAULT_ARCHETYPES",
    "generate_cer_like",
    "NUMEDConfig",
    "ResponseArchetype",
    "DEFAULT_RESPONSE_ARCHETYPES",
    "claret_tumor_size",
    "generate_numed_like",
    "GaussianClustersConfig",
    "generate_gaussian_clusters",
    "generate_constant_series",
    "generate_two_level_series",
    "available_datasets",
    "dataset_population_defaults",
    "dataset_size_parameter",
    "DatasetEntry",
    "load_dataset",
    "load_dataset_for_population",
    "register_dataset",
]
