"""Controlled synthetic time-series with known cluster structure.

These generators produce datasets whose ground-truth clustering is known by
construction, which makes them the right tool for unit tests, property tests,
and calibration experiments (e.g. measuring how far a differentially-private
clustering strays from an exactly recoverable one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import check_non_negative_float, check_positive_int
from ..exceptions import DatasetError
from ..timeseries import MatrixBackedCollection, TimeSeries, TimeSeriesCollection


@dataclass(frozen=True)
class GaussianClustersConfig:
    """Parameters of the Gaussian-clusters generator.

    Each cluster prototype is a smooth random curve; members are prototypes
    plus i.i.d. Gaussian noise.  ``separation`` scales the distance between
    prototypes relative to the noise, so a large value makes the clustering
    trivially recoverable and a small value makes it genuinely hard.
    """

    n_series: int = 200
    series_length: int = 48
    n_clusters: int = 5
    noise_std: float = 0.05
    separation: float = 1.0
    seed: int = 0
    matrix_backed: bool = False
    dtype: str = "float64"

    def __post_init__(self) -> None:
        check_positive_int(self.n_series, "n_series")
        check_positive_int(self.series_length, "series_length")
        check_positive_int(self.n_clusters, "n_clusters")
        check_non_negative_float(self.noise_std, "noise_std")
        check_non_negative_float(self.separation, "separation")
        if self.n_clusters > self.n_series:
            raise DatasetError(
                f"cannot generate {self.n_clusters} clusters with {self.n_series} series"
            )
        if self.dtype not in ("float64", "float32"):
            raise DatasetError(f"dtype must be float64 or float32, got {self.dtype!r}")
        if self.dtype != "float64" and not self.matrix_backed:
            raise DatasetError("dtype=float32 requires matrix_backed=True")


def _smooth_prototype(length: int, rng: np.random.Generator, n_harmonics: int = 4) -> np.ndarray:
    """A smooth random curve in [0, 1]: a few random Fourier harmonics."""
    grid = np.linspace(0.0, 2.0 * np.pi, num=length)
    curve = np.zeros(length)
    for harmonic in range(1, n_harmonics + 1):
        amplitude = rng.uniform(0.2, 1.0) / harmonic
        phase = rng.uniform(0.0, 2.0 * np.pi)
        curve += amplitude * np.sin(harmonic * grid + phase)
    low, high = float(curve.min()), float(curve.max())
    if high - low > 0:
        curve = (curve - low) / (high - low)
    return curve


def generate_gaussian_clusters(
    config: GaussianClustersConfig | None = None, **overrides: object
) -> TimeSeriesCollection:
    """Generate a collection with a known partition into Gaussian clusters.

    Metadata carries ``cluster`` (the ground-truth label, an integer in
    ``range(n_clusters)``).
    """
    if config is None:
        config = GaussianClustersConfig(**overrides)  # type: ignore[arg-type]
    elif overrides:
        raise DatasetError("pass either a GaussianClustersConfig or keyword overrides, not both")
    rng = np.random.default_rng(config.seed)
    prototypes = np.vstack([
        config.separation * _smooth_prototype(config.series_length, rng)
        for _ in range(config.n_clusters)
    ])
    # Assign members round-robin so every cluster is non-empty, then shuffle.
    labels = np.array([index % config.n_clusters for index in range(config.n_series)])
    rng.shuffle(labels)
    if config.matrix_backed:
        return _matrix_backed_members(config, rng, prototypes, labels)
    series: list[TimeSeries] = []
    for index in range(config.n_series):
        label = int(labels[index])
        values = prototypes[label].copy()
        if config.noise_std > 0:
            values = values + rng.normal(0.0, config.noise_std, size=config.series_length)
        series.append(
            TimeSeries(
                values,
                series_id=f"synthetic-{index:05d}",
                metadata={"cluster": label},
            )
        )
    return TimeSeriesCollection(series, name="gaussian-clusters")


#: Rows filled per block by the matrix-backed generator — bounds the float64
#: noise temporary to a few dozen MiB regardless of the population size.
_MATRIX_FILL_ROWS = 262_144


def _matrix_backed_members(
    config: GaussianClustersConfig,
    rng: np.random.Generator,
    prototypes: np.ndarray,
    labels: np.ndarray,
) -> MatrixBackedCollection:
    """Vectorised member generation sharing the per-series RNG stream.

    ``Generator.normal`` fills a ``(rows, length)`` request in C order from
    the same sequential draw stream the per-series loop consumes, so the
    float64 matrix here is bit-identical to the dense generator's rows —
    block-splitting only regroups the same sequence.  With
    ``dtype="float32"`` the draws stay float64 and are rounded once at
    store time, keeping the resident matrix (and the slab engine fed from
    it) at half size.
    """
    out = np.empty((config.n_series, config.series_length), dtype=np.dtype(config.dtype))
    for start in range(0, config.n_series, _MATRIX_FILL_ROWS):
        stop = min(config.n_series, start + _MATRIX_FILL_ROWS)
        block = prototypes[labels[start:stop]]
        if config.noise_std > 0:
            block = block + rng.normal(
                0.0, config.noise_std, size=(stop - start, config.series_length)
            )
        out[start:stop] = block
    return MatrixBackedCollection(
        out,
        name="gaussian-clusters",
        label_key="cluster",
        labels=labels,
        id_prefix="synthetic",
    )


def generate_constant_series(
    n_series: int, series_length: int, value: float = 1.0, name: str = "constant",
) -> TimeSeriesCollection:
    """A degenerate dataset where every series is the same constant.

    Useful in tests: any correct averaging protocol must return exactly the
    constant, so deviations isolate the effect of noise or approximation.
    """
    check_positive_int(n_series, "n_series")
    check_positive_int(series_length, "series_length")
    series = [
        TimeSeries(
            np.full(series_length, float(value)),
            series_id=f"constant-{index:05d}",
            metadata={"cluster": 0},
        )
        for index in range(n_series)
    ]
    return TimeSeriesCollection(series, name=name)


def generate_two_level_series(
    n_series: int,
    series_length: int,
    low: float = 0.0,
    high: float = 1.0,
    seed: int = 0,
) -> TimeSeriesCollection:
    """Two perfectly separated constant-valued clusters (low and high).

    The exact optimal 2-means solution is known (the two constants), so this
    dataset is used by tests that need to check convergence to the optimum.
    """
    check_positive_int(n_series, "n_series")
    check_positive_int(series_length, "series_length")
    if n_series < 2:
        raise DatasetError("need at least two series for two clusters")
    if low >= high:
        raise DatasetError(f"low ({low}) must be smaller than high ({high})")
    rng = np.random.default_rng(seed)
    labels = np.array([index % 2 for index in range(n_series)])
    rng.shuffle(labels)
    series = [
        TimeSeries(
            np.full(series_length, high if label else low),
            series_id=f"twolevel-{index:05d}",
            metadata={"cluster": int(label)},
        )
        for index, label in enumerate(labels)
    ]
    return TimeSeriesCollection(series, name="two-level")
