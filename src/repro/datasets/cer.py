"""Synthetic stand-in for the CER Irish smart-meter dataset.

The demonstration uses the CER Electricity Customer Behaviour Trial dataset
(ISSDA), which is distributed under a restrictive licence and cannot be
redistributed here.  This module generates electricity-consumption
time-series from a small set of *household archetypes* (behavioural
profiles): each archetype defines a base load, morning/evening peak shapes,
a weekday/weekend modulation and an appliance-spike rate.  The generator
produces data with the properties the protocol actually relies on — fixed
length, bounded positive values, and latent cluster structure — so every
code path exercised by the real dataset is exercised here.

The ground-truth archetype of each household is stored in the series
metadata under the key ``"archetype"`` so that external clustering-quality
metrics (adjusted Rand index) can be computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .._validation import check_non_negative_float, check_positive_int
from ..exceptions import DatasetError
from ..timeseries import TimeSeries, TimeSeriesCollection

#: Number of half-hourly readings per day, as in the CER trial.
READINGS_PER_DAY = 48


@dataclass(frozen=True)
class HouseholdArchetype:
    """Behavioural profile of a class of households.

    Attributes
    ----------
    name:
        Archetype identifier (becomes the ground-truth label).
    base_load_kw:
        Always-on consumption (fridge, standby devices), in kW.
    morning_peak_kw / evening_peak_kw:
        Amplitude of the morning and evening activity peaks, in kW.
    morning_peak_hour / evening_peak_hour:
        Centre of the peaks, in hours (0-24).
    peak_width_hours:
        Standard deviation of the Gaussian-shaped peaks, in hours.
    weekend_factor:
        Multiplicative factor applied to daytime consumption on weekends
        (e.g. > 1 for families at home, < 1 for commuters away).
    night_owl:
        Fraction of the evening peak shifted toward late night.
    spike_rate:
        Expected number of appliance spikes (washing machine, oven) per day.
    spike_amplitude_kw:
        Amplitude of each appliance spike, in kW.
    """

    name: str
    base_load_kw: float
    morning_peak_kw: float
    evening_peak_kw: float
    morning_peak_hour: float = 7.5
    evening_peak_hour: float = 19.0
    peak_width_hours: float = 1.5
    weekend_factor: float = 1.0
    night_owl: float = 0.0
    spike_rate: float = 1.0
    spike_amplitude_kw: float = 0.8


#: Default archetype catalogue, loosely inspired by published CER clusterings
#: (low consumers, commuters, families, home workers, night owls, businesses).
DEFAULT_ARCHETYPES: tuple[HouseholdArchetype, ...] = (
    HouseholdArchetype("low_consumer", 0.10, 0.15, 0.35, weekend_factor=1.05,
                       spike_rate=0.4, spike_amplitude_kw=0.5),
    HouseholdArchetype("commuter", 0.15, 0.60, 0.90, morning_peak_hour=7.0,
                       evening_peak_hour=19.5, weekend_factor=1.3, spike_rate=0.8),
    HouseholdArchetype("family", 0.25, 0.80, 1.40, morning_peak_hour=7.5,
                       evening_peak_hour=18.5, weekend_factor=1.2, spike_rate=2.0,
                       spike_amplitude_kw=1.0),
    HouseholdArchetype("home_worker", 0.30, 0.50, 0.80, morning_peak_hour=9.0,
                       evening_peak_hour=20.0, peak_width_hours=3.0,
                       weekend_factor=1.0, spike_rate=1.5),
    HouseholdArchetype("night_owl", 0.20, 0.20, 0.90, evening_peak_hour=22.0,
                       weekend_factor=1.1, night_owl=0.6, spike_rate=1.0),
    HouseholdArchetype("small_business", 0.40, 1.20, 0.60, morning_peak_hour=10.0,
                       evening_peak_hour=16.0, peak_width_hours=3.5,
                       weekend_factor=0.3, spike_rate=0.5),
)


@dataclass(frozen=True)
class CERConfig:
    """Parameters of the synthetic CER-like generator.

    Attributes
    ----------
    n_households:
        Number of generated households (one series per household).
    n_days:
        Number of consecutive days covered by each series.
    readings_per_day:
        Sampling rate; 48 matches the half-hourly CER meters.
    noise_std_kw:
        Standard deviation of the per-reading measurement noise.
    archetypes:
        Archetype catalogue to draw households from.
    archetype_weights:
        Optional relative frequency of each archetype (uniform when omitted).
    seed:
        Seed of the generator.
    """

    n_households: int = 200
    n_days: int = 7
    readings_per_day: int = READINGS_PER_DAY
    noise_std_kw: float = 0.05
    archetypes: tuple[HouseholdArchetype, ...] = DEFAULT_ARCHETYPES
    archetype_weights: tuple[float, ...] | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.n_households, "n_households")
        check_positive_int(self.n_days, "n_days")
        check_positive_int(self.readings_per_day, "readings_per_day")
        check_non_negative_float(self.noise_std_kw, "noise_std_kw")
        if not self.archetypes:
            raise DatasetError("at least one archetype is required")
        if self.archetype_weights is not None:
            if len(self.archetype_weights) != len(self.archetypes):
                raise DatasetError(
                    "archetype_weights must have one entry per archetype "
                    f"({len(self.archetype_weights)} != {len(self.archetypes)})"
                )
            if any(weight < 0 for weight in self.archetype_weights):
                raise DatasetError("archetype_weights must be non-negative")
            if sum(self.archetype_weights) <= 0:
                raise DatasetError("archetype_weights must not all be zero")

    @property
    def series_length(self) -> int:
        """Number of points of every generated series."""
        return self.n_days * self.readings_per_day


def _gaussian_bump(hours: np.ndarray, center: float, width: float) -> np.ndarray:
    """Gaussian-shaped activity bump over hours-of-day, wrapping at midnight."""
    delta = np.minimum(np.abs(hours - center), 24.0 - np.abs(hours - center))
    return np.exp(-0.5 * (delta / width) ** 2)


def _household_day(
    archetype: HouseholdArchetype,
    hours: np.ndarray,
    is_weekend: bool,
    rng: np.random.Generator,
    readings_per_day: int,
) -> np.ndarray:
    """Generate one day of consumption for a household of the given archetype."""
    profile = np.full(readings_per_day, archetype.base_load_kw)
    morning = archetype.morning_peak_kw * _gaussian_bump(
        hours, archetype.morning_peak_hour, archetype.peak_width_hours
    )
    evening_center = archetype.evening_peak_hour + 3.0 * archetype.night_owl
    evening = archetype.evening_peak_kw * _gaussian_bump(
        hours, evening_center, archetype.peak_width_hours
    )
    daytime = morning + evening
    if is_weekend:
        daytime = daytime * archetype.weekend_factor
    profile = profile + daytime
    # Appliance spikes: a Poisson number of short rectangular pulses.
    n_spikes = rng.poisson(archetype.spike_rate)
    for _ in range(n_spikes):
        start = rng.integers(0, readings_per_day)
        duration = int(rng.integers(1, 4))
        end = min(readings_per_day, start + duration)
        profile[start:end] += archetype.spike_amplitude_kw * rng.uniform(0.7, 1.3)
    return profile


def generate_cer_like(config: CERConfig | None = None, **overrides: object) -> TimeSeriesCollection:
    """Generate a CER-like collection of household electricity time-series.

    Parameters may be passed either as a :class:`CERConfig` or as keyword
    overrides of the default configuration.

    Returns
    -------
    TimeSeriesCollection
        One series per household; metadata carries ``archetype`` (ground
        truth) and ``household`` (index).
    """
    if config is None:
        config = CERConfig(**overrides)  # type: ignore[arg-type]
    elif overrides:
        raise DatasetError("pass either a CERConfig or keyword overrides, not both")
    rng = np.random.default_rng(config.seed)
    hours = (np.arange(config.readings_per_day) + 0.5) * (24.0 / config.readings_per_day)
    weights = None
    if config.archetype_weights is not None:
        total = float(sum(config.archetype_weights))
        weights = [weight / total for weight in config.archetype_weights]
    archetype_indices = rng.choice(len(config.archetypes), size=config.n_households, p=weights)

    series: list[TimeSeries] = []
    for household, archetype_index in enumerate(archetype_indices):
        archetype = config.archetypes[int(archetype_index)]
        # Per-household persistent multiplier models household size / insulation.
        household_scale = float(rng.uniform(0.8, 1.2))
        days = []
        for day in range(config.n_days):
            is_weekend = day % 7 >= 5
            days.append(
                _household_day(archetype, hours, is_weekend, rng, config.readings_per_day)
            )
        values = np.concatenate(days) * household_scale
        if config.noise_std_kw > 0:
            values = values + rng.normal(0.0, config.noise_std_kw, size=values.shape)
        values = np.clip(values, 0.0, None)
        series.append(
            TimeSeries(
                values,
                series_id=f"household-{household:05d}",
                metadata={"archetype": archetype.name, "household": household},
            )
        )
    return TimeSeriesCollection(series, name="cer-synthetic")
