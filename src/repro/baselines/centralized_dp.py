"""Centralised differentially-private k-means baseline (SuLQ style).

A trusted curator holds every series and runs k-means, but only touches the
data through noisy queries: at every iteration the per-cluster sums and
counts are perturbed with the Laplace mechanism before the means are formed.
This is the classic SuLQ/DPLloyd construction; it gives the *quality floor a
trusted-curator design can reach at the same ε*, which is exactly the
comparison point the Chiaroscuro evaluation needs: Chiaroscuro removes the
trusted curator while aiming at a similar privacy/quality trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_positive_float
from ..clustering.kmeans import (
    assign_to_centroids,
    centroid_displacement,
    compute_inertia,
    public_initial_centroids,
    reseed_centroid,
)
from ..clustering.smoothing import smooth_centroids
from ..config import KMeansConfig, PrivacyConfig, SmoothingConfig
from ..privacy.budget import PrivacyAccountant
from ..privacy.laplace import SensitivityModel, sample_laplace
from ..privacy.strategies import make_budget_strategy
from ..timeseries import TimeSeriesCollection


@dataclass(frozen=True)
class CentralizedDPResult:
    """Result of the centralised DP baseline."""

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    n_iterations: int
    converged: bool
    epsilon_spent: float
    per_iteration_epsilon: list[float] = field(default_factory=list)


def centralized_dp_kmeans(
    collection: TimeSeriesCollection,
    kmeans_config: KMeansConfig | None = None,
    privacy_config: PrivacyConfig | None = None,
    smoothing_config: SmoothingConfig | None = None,
    seed: int = 0,
) -> CentralizedDPResult:
    """Run the SuLQ-style DP k-means with the same knobs as Chiaroscuro.

    The privacy budget is distributed across iterations with the configured
    budget strategy and the optional centroid smoothing is applied, so that
    head-to-head comparisons against Chiaroscuro isolate the effect of the
    *distribution* (gossip + threshold encryption) rather than of different
    DP machinery.
    """
    kmeans_config = kmeans_config if kmeans_config is not None else KMeansConfig()
    privacy_config = privacy_config if privacy_config is not None else PrivacyConfig()
    smoothing_config = (
        smoothing_config if smoothing_config is not None else SmoothingConfig(method="none")
    )
    data = collection.to_matrix()
    rng = np.random.default_rng(seed)
    value_bound = check_positive_float(privacy_config.value_bound, "value_bound")
    clipped = np.clip(data, -value_bound, value_bound)
    n_series, series_length = clipped.shape

    sensitivity = SensitivityModel(
        series_length=series_length,
        value_bound=privacy_config.value_bound,
        count_bound=privacy_config.count_bound,
    )
    accountant = PrivacyAccountant(privacy_config.epsilon, privacy_config.delta_slack)
    strategy = make_budget_strategy(
        privacy_config.budget_strategy,
        privacy_config.epsilon,
        kmeans_config.max_iterations,
        geometric_ratio=privacy_config.geometric_ratio,
    )

    centroids = public_initial_centroids(
        kmeans_config.n_clusters,
        series_length,
        value_low=float(clipped.min()),
        value_high=float(clipped.max()),
        seed=seed,
    )
    per_iteration_epsilon: list[float] = []
    converged = False
    iteration = 0
    previous_displacement: float | None = None
    for iteration in range(1, kmeans_config.max_iterations + 1):
        progress = None
        if previous_displacement is not None:
            progress = float(np.clip(1.0 - previous_displacement, 0.0, 1.0))
        epsilon_iteration = strategy.epsilon_for_iteration(
            iteration - 1, accountant.remaining_epsilon, progress=progress
        )
        if epsilon_iteration <= 0 or not accountant.can_spend(epsilon_iteration):
            break
        accountant.spend(epsilon_iteration, label=f"iteration-{iteration}")
        per_iteration_epsilon.append(epsilon_iteration)
        scale = sensitivity.laplace_scale(epsilon_iteration)

        assignments = assign_to_centroids(clipped, centroids)
        new_centroids = np.empty_like(centroids)
        noisy_counts = np.zeros(kmeans_config.n_clusters)
        for cluster in range(kmeans_config.n_clusters):
            members = clipped[assignments == cluster]
            noisy_sum = members.sum(axis=0) + sample_laplace(scale, series_length, rng)
            noisy_count = float(len(members)) + float(sample_laplace(scale, 1, rng)[0])
            noisy_counts[cluster] = noisy_count
            if noisy_count < 1.0:
                noisy_count = 1.0
            new_centroids[cluster] = np.clip(
                noisy_sum / noisy_count, -value_bound, value_bound
            )
        donor = int(np.argmax(noisy_counts))
        for cluster in range(kmeans_config.n_clusters):
            if noisy_counts[cluster] < 1.0 and cluster != donor:
                new_centroids[cluster] = reseed_centroid(
                    new_centroids[donor], value_bound, iteration, cluster, seed=seed
                )
        new_centroids = smooth_centroids(new_centroids, smoothing_config)
        displacement = centroid_displacement(centroids, new_centroids)
        previous_displacement = displacement
        centroids = new_centroids
        if displacement <= kmeans_config.convergence_threshold:
            converged = True
            break

    assignments = assign_to_centroids(clipped, centroids)
    return CentralizedDPResult(
        centroids=centroids,
        assignments=assignments,
        inertia=compute_inertia(data, centroids, assignments),
        n_iterations=iteration,
        converged=converged,
        epsilon_spent=accountant.spent_epsilon,
        per_iteration_epsilon=per_iteration_epsilon,
    )
