"""Centralised (non-private) k-means baseline.

This is the "naive approach" the paper's introduction warns against: copy
every personal time-series to one server and cluster there.  It provides the
quality reference of claim C2 — Chiaroscuro aims at a quality "similar to the
quality of centralized clustering results" — and the upper bound every
experiment normalises against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..clustering.kmeans import KMeansResult, best_of_kmeans, kmeans
from ..config import KMeansConfig
from ..timeseries import TimeSeriesCollection


@dataclass(frozen=True)
class CentralizedResult:
    """Result of the centralised baseline on a collection."""

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    n_iterations: int
    converged: bool

    @classmethod
    def from_kmeans(cls, result: KMeansResult) -> "CentralizedResult":
        """Wrap a raw :class:`KMeansResult`."""
        return cls(
            centroids=result.centroids,
            assignments=result.assignments,
            inertia=result.inertia,
            n_iterations=result.n_iterations,
            converged=result.converged,
        )


def centralized_kmeans(
    collection: TimeSeriesCollection,
    config: KMeansConfig | None = None,
    seed: int = 0,
    n_restarts: int = 1,
) -> CentralizedResult:
    """Cluster a collection with centralised Lloyd k-means.

    Parameters
    ----------
    collection:
        The (hypothetically centralised) time-series.
    config:
        k-means parameters; the library defaults are used when omitted.
    seed:
        Seed of the initialisation.
    n_restarts:
        Number of restarts (best inertia wins); 1 reproduces a single run.
    """
    config = config if config is not None else KMeansConfig()
    data = collection.to_matrix()
    if n_restarts > 1:
        result = best_of_kmeans(
            data,
            config.n_clusters,
            n_restarts=n_restarts,
            max_iterations=config.max_iterations,
            convergence_threshold=config.convergence_threshold,
            init=config.init,
            seed=seed,
        )
    else:
        result = kmeans(
            data,
            config.n_clusters,
            max_iterations=config.max_iterations,
            convergence_threshold=config.convergence_threshold,
            init=config.init,
            seed=seed,
        )
    return CentralizedResult.from_kmeans(result)
