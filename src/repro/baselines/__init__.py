"""Baselines: centralised k-means, centralised DP k-means, plain gossip k-means."""

from .centralized import CentralizedResult, centralized_kmeans
from .centralized_dp import CentralizedDPResult, centralized_dp_kmeans
from .distributed_plain import DistributedPlainResult, distributed_plain_kmeans

__all__ = [
    "CentralizedResult",
    "centralized_kmeans",
    "CentralizedDPResult",
    "centralized_dp_kmeans",
    "DistributedPlainResult",
    "distributed_plain_kmeans",
]
