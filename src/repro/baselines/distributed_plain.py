"""Non-private distributed gossip k-means baseline.

Removes both privacy protections (no encryption, no perturbation) but keeps
the massive distribution: every participant holds a single series, assignment
is local, and the per-cluster sums/counts are computed with cleartext gossip
averaging.  Comparing this baseline against Chiaroscuro isolates the quality
cost of the *privacy machinery* from the quality cost of *distribution*
(gossip approximation alone).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_positive_int
from ..clustering.kmeans import (
    assign_to_centroids,
    centroid_displacement,
    compute_inertia,
    public_initial_centroids,
    reseed_centroid,
)
from ..config import GossipConfig, KMeansConfig
from ..gossip.protocol import gossip_average
from ..timeseries import TimeSeriesCollection


@dataclass(frozen=True)
class DistributedPlainResult:
    """Result of the non-private distributed baseline."""

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    n_iterations: int
    converged: bool
    gossip_error_history: list[float] = field(default_factory=list)


def distributed_plain_kmeans(
    collection: TimeSeriesCollection,
    kmeans_config: KMeansConfig | None = None,
    gossip_config: GossipConfig | None = None,
    seed: int = 0,
) -> DistributedPlainResult:
    """Distributed k-means over cleartext gossip averaging.

    Each iteration mirrors Chiaroscuro's execution sequence without the
    privacy layers: local assignment, gossip averaging of the per-cluster
    contribution vectors (series stacked with the membership indicator), and
    a local convergence check on the reconstructed means.
    """
    kmeans_config = kmeans_config if kmeans_config is not None else KMeansConfig()
    gossip_config = gossip_config if gossip_config is not None else GossipConfig()
    data = collection.to_matrix()
    n_series, series_length = data.shape
    check_positive_int(kmeans_config.n_clusters, "n_clusters")

    centroids = public_initial_centroids(
        kmeans_config.n_clusters,
        series_length,
        value_low=float(data.min()),
        value_high=float(data.max()),
        seed=seed,
    )
    gossip_error_history: list[float] = []
    converged = False
    iteration = 0
    for iteration in range(1, kmeans_config.max_iterations + 1):
        assignments = assign_to_centroids(data, centroids)
        # Each participant's contribution: per cluster, (indicator * series, indicator).
        contributions = np.zeros((n_series, kmeans_config.n_clusters * (series_length + 1)))
        for index in range(n_series):
            cluster = assignments[index]
            offset = cluster * (series_length + 1)
            contributions[index, offset:offset + series_length] = data[index]
            contributions[index, offset + series_length] = 1.0
        estimates = gossip_average(
            contributions,
            cycles=gossip_config.cycles_per_aggregation,
            topology=gossip_config.topology,
            exchanges_per_cycle=gossip_config.exchanges_per_cycle,
            seed=seed + iteration,
            drop_probability=gossip_config.drop_probability,
        )
        # Every node reconstructs the means from its own estimate; they are all
        # close after convergence, so we use node 0's view (as the paper's demo
        # displays one participant's perspective) and record the spread.
        true_average = contributions.mean(axis=0)
        spread = float(
            np.linalg.norm(estimates - true_average[None, :], axis=1).max()
            / max(1e-12, np.linalg.norm(true_average))
        )
        gossip_error_history.append(spread)
        view = estimates[0]
        new_centroids = np.empty_like(centroids)
        counts = np.zeros(kmeans_config.n_clusters)
        min_count = 1.0 / (2 * n_series)
        for cluster in range(kmeans_config.n_clusters):
            offset = cluster * (series_length + 1)
            average_sum = view[offset:offset + series_length]
            average_count = view[offset + series_length]
            counts[cluster] = average_count
            if average_count <= min_count:
                new_centroids[cluster] = centroids[cluster]
            else:
                new_centroids[cluster] = average_sum / average_count
        donor = int(np.argmax(counts))
        value_bound = float(max(data.max(), 1e-9))
        for cluster in range(kmeans_config.n_clusters):
            if counts[cluster] <= min_count and cluster != donor:
                new_centroids[cluster] = reseed_centroid(
                    new_centroids[donor], value_bound, iteration, cluster, seed=seed
                )
        displacement = centroid_displacement(centroids, new_centroids)
        centroids = new_centroids
        if displacement <= kmeans_config.convergence_threshold:
            converged = True
            break

    assignments = assign_to_centroids(data, centroids)
    return DistributedPlainResult(
        centroids=centroids,
        assignments=assignments,
        inertia=compute_inertia(data, centroids, assignments),
        n_iterations=iteration,
        converged=converged,
        gossip_error_history=gossip_error_history,
    )
