"""Execution log of a Chiaroscuro run.

The demonstration stores "the execution log ... in a local MongoDB database"
and the GUI replays it (evolution of the centroids, of the noise, of the
quality and cost measures, slide bars over the iterations).  This module is
the library equivalent: a structured, serialisable record of everything the
GUI needs, populated by the protocol runner and consumed by the analysis and
benchmark code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from ..exceptions import AnalysisError


def _to_jsonable(value: Any) -> Any:
    """Recursively convert numpy containers into plain JSON-compatible types."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, Mapping):
        return {str(key): _to_jsonable(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(entry) for entry in value]
    return value


@dataclass
class IterationRecord:
    """Everything recorded about one protocol iteration.

    Attributes
    ----------
    iteration:
        1-based iteration index.
    epsilon_spent:
        Privacy budget consumed by this iteration's disclosure.
    centroids_before:
        The perturbed centroids the iteration started from.
    perturbed_means:
        The perturbed means disclosed at the end of the iteration (after
        smoothing), which become the next centroids.
    noise_free_means:
        The means the iteration would have produced without any perturbation
        or gossip error (computed by the simulation observer for analysis
        only; a real deployment cannot know them).
    displacement:
        Average centroid displacement between ``centroids_before`` and
        ``perturbed_means``.
    tracked_assignments:
        Cluster assignment of the tracked participants (the demo follows a
        random subset of four participants across iterations).
    costs:
        Message/byte/crypto-operation counters accumulated during the
        iteration.
    """

    iteration: int
    epsilon_spent: float = 0.0
    centroids_before: np.ndarray | None = None
    perturbed_means: np.ndarray | None = None
    noise_free_means: np.ndarray | None = None
    displacement: float = 0.0
    tracked_assignments: dict[int, int] = field(default_factory=dict)
    costs: dict[str, float] = field(default_factory=dict)

    def noise_magnitude(self) -> float:
        """L2 distance between the perturbed and noise-free means.

        This is the quantity behind the demo's "impact of the noise on the
        centroids" panel.
        """
        if self.perturbed_means is None or self.noise_free_means is None:
            raise AnalysisError("both perturbed and noise-free means are required")
        return float(np.linalg.norm(self.perturbed_means - self.noise_free_means))

    def to_dict(self) -> dict[str, Any]:
        """Serialise to plain JSON-compatible types."""
        return _to_jsonable({
            "iteration": self.iteration,
            "epsilon_spent": self.epsilon_spent,
            "centroids_before": self.centroids_before,
            "perturbed_means": self.perturbed_means,
            "noise_free_means": self.noise_free_means,
            "displacement": self.displacement,
            "tracked_assignments": self.tracked_assignments,
            "costs": self.costs,
        })

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "IterationRecord":
        """Inverse of :meth:`to_dict`."""
        def _array(key: str) -> np.ndarray | None:
            value = payload.get(key)
            return None if value is None else np.asarray(value, dtype=float)

        return cls(
            iteration=int(payload["iteration"]),
            epsilon_spent=float(payload.get("epsilon_spent", 0.0)),
            centroids_before=_array("centroids_before"),
            perturbed_means=_array("perturbed_means"),
            noise_free_means=_array("noise_free_means"),
            displacement=float(payload.get("displacement", 0.0)),
            tracked_assignments={
                int(key): int(value)
                for key, value in dict(payload.get("tracked_assignments", {})).items()
            },
            costs={str(key): float(value) for key, value in dict(payload.get("costs", {})).items()},
        )


class ExecutionLog:
    """Ordered collection of :class:`IterationRecord` plus run-level metadata."""

    def __init__(self, metadata: Mapping[str, Any] | None = None) -> None:
        self.metadata: dict[str, Any] = dict(metadata or {})
        self._records: list[IterationRecord] = []

    # ------------------------------------------------------------------ container
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[IterationRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> IterationRecord:
        return self._records[index]

    def append(self, record: IterationRecord) -> None:
        """Add a record; iterations must arrive in increasing order."""
        if self._records and record.iteration <= self._records[-1].iteration:
            raise AnalysisError(
                f"iteration {record.iteration} logged after {self._records[-1].iteration}"
            )
        self._records.append(record)

    @property
    def records(self) -> list[IterationRecord]:
        """The records, in iteration order."""
        return list(self._records)

    # ------------------------------------------------------------------ views
    def centroid_trajectory(self) -> list[np.ndarray]:
        """Per-iteration perturbed means (the centroid evolution the GUI shows)."""
        return [record.perturbed_means for record in self._records
                if record.perturbed_means is not None]

    def noise_magnitudes(self) -> list[float]:
        """Per-iteration noise magnitude (perturbed vs noise-free means)."""
        return [
            record.noise_magnitude()
            for record in self._records
            if record.perturbed_means is not None and record.noise_free_means is not None
        ]

    def displacements(self) -> list[float]:
        """Per-iteration centroid displacement."""
        return [record.displacement for record in self._records]

    def epsilon_schedule(self) -> list[float]:
        """Per-iteration privacy spend."""
        return [record.epsilon_spent for record in self._records]

    def tracked_assignment_history(self) -> dict[int, list[int]]:
        """Per-tracked-participant sequence of assigned clusters."""
        history: dict[int, list[int]] = {}
        for record in self._records:
            for participant, cluster in record.tracked_assignments.items():
                history.setdefault(participant, []).append(cluster)
        return history

    def total_costs(self) -> dict[str, float]:
        """Sum of every cost counter across iterations."""
        totals: dict[str, float] = {}
        for record in self._records:
            for key, value in record.costs.items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    # ------------------------------------------------------------------ serialisation
    def to_dict(self) -> dict[str, Any]:
        """Serialise the whole log (metadata + records)."""
        return {
            "metadata": _to_jsonable(self.metadata),
            "records": [record.to_dict() for record in self._records],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExecutionLog":
        """Inverse of :meth:`to_dict`."""
        log = cls(metadata=dict(payload.get("metadata", {})))
        for record in payload.get("records", []):
            log.append(IterationRecord.from_dict(record))
        return log

    def save(self, path: str | Path) -> Path:
        """Write the log to a JSON file and return the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ExecutionLog":
        """Read a log previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dict(payload)
