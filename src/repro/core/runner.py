"""High-level orchestration of a Chiaroscuro run.

:func:`run_chiaroscuro` is the main entry point of the library: given a
collection of personal time-series (each series conceptually living on its
owner's device) and a configuration, it builds the simulation, runs the
protocol to completion and returns a :class:`~repro.core.result.ChiaroscuroResult`
containing the final profiles, the privacy accounting, the cost summary and
the full execution log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..clustering.kmeans import assign_to_centroids, compute_inertia, public_initial_centroids
from ..config import ChiaroscuroConfig
from ..crypto.backends import CipherBackend, make_backend
from ..crypto.wire import normalize_wire
from ..exceptions import ConfigurationError, ProtocolError
from ..gossip.encrypted_sum import check_headroom
from ..gossip.overlay import build_overlay
from ..privacy.laplace import SensitivityModel
from ..privacy.noise_shares import slot_magnitude_bound
from ..privacy.probabilistic import guarantee_for_run
from ..privacy.strategies import make_budget_strategy
from ..simulation.engine import CycleEngine
from ..timeseries import TimeSeriesCollection
from .execution_log import ExecutionLog, IterationRecord
from .participant import ChiaroscuroParticipant
from .result import ChiaroscuroResult, CostSummary


def normalize_collection(
    collection: TimeSeriesCollection, value_bound: float
) -> tuple[np.ndarray, dict[str, float]]:
    """Min-max normalise a collection into [0, value_bound].

    Returns the normalised matrix and the transform parameters needed to map
    profiles back to the original units (``original = normalised / scale +
    offset``).  The bounds are treated as public domain knowledge (e.g. "a
    household draws between 0 and 10 kW"), which is the standard assumption
    behind the clipping bound of the Laplace sensitivity.
    """
    matrix = collection.to_matrix()
    low = float(matrix.min())
    high = float(matrix.max())
    span = high - low
    if span <= 0:
        span = 1.0
    scale = value_bound / span
    normalised = (matrix - low) * scale
    return normalised, {"offset": low, "scale": scale, "value_bound": value_bound}


def denormalize_profiles(profiles: np.ndarray, transform: dict[str, float]) -> np.ndarray:
    """Map profiles produced on normalised data back to the original units."""
    scale = float(transform.get("scale", 1.0))
    offset = float(transform.get("offset", 0.0))
    if scale == 0:
        raise ProtocolError("invalid normalisation transform: scale is zero")
    return profiles / scale + offset


def _packed_slot_bound(
    config: ChiaroscuroConfig, series_length: int, value_bound: float
) -> float:
    """Magnitude one fresh packed slot must hold for this configuration.

    A slot carries either one (clipped) series point, one membership
    indicator, or one noise-share coordinate.  The noise dominates: its
    Laplace scale follows from the sensitivity and the *smallest*
    per-iteration budget the configured strategy may grant, inflated by the
    noise-share tail bound so that encoding a share essentially never
    overflows a slot.
    """
    sensitivity = SensitivityModel(
        series_length=series_length,
        value_bound=config.privacy.value_bound,
        count_bound=config.privacy.count_bound,
    )
    strategy = make_budget_strategy(
        config.privacy.budget_strategy,
        config.privacy.epsilon,
        config.kmeans.max_iterations,
        geometric_ratio=config.privacy.geometric_ratio,
    )
    # Whatever the runtime spending pattern, every strategy grants either 0
    # (budget exhausted) or at least this much — the unconditional bound the
    # slot width must absorb.
    min_epsilon = strategy.minimum_iteration_epsilon()
    noise_bound = slot_magnitude_bound(sensitivity.laplace_scale(min_epsilon))
    return max(value_bound, 1.0, config.privacy.count_bound) + noise_bound


@dataclass
class RunSetup:
    """Everything a run derives deterministically from (collection, config).

    The cycle runner builds this once; every live-runner worker rebuilds the
    cheap parts identically from the same inputs (data, overlay, centroids,
    seeds) while inheriting the expensive/random part — the cipher backend
    and its key material — from the coordinator process.  Keeping the whole
    derivation in one place is what makes the two execution modes agree.
    """

    config: ChiaroscuroConfig
    data: np.ndarray
    transform: dict[str, float]
    backend: CipherBackend
    overlay: Any
    initial_centroids: np.ndarray
    noise_contributor_ids: set[int]
    n_noise_contributors: int
    participant_seeds: list[int]
    tracked_ids: list[int]

    @property
    def n_participants(self) -> int:
        return self.data.shape[0]

    @property
    def series_length(self) -> int:
        return self.data.shape[1]

    def packing_info(self) -> dict[str, Any]:
        backend = self.backend
        return {
            "enabled": backend.is_packed,
            "slots": backend.packing.slots if backend.packing is not None else 1,
            "slot_bits": backend.packing.slot_bits if backend.packing is not None else 0,
        }

    def fastmath_info(self) -> dict[str, Any]:
        return {
            "mode": getattr(self.backend, "fastmath", "off"),
            "pooled": getattr(self.backend, "fastmath_enabled", False),
        }

    def wire_info(self) -> dict[str, Any]:
        return {
            "mode": normalize_wire(self.config.network.wire),
            "corruption_rate": self.config.network.corruption_rate,
        }

    def make_participant(self, node_id: int) -> ChiaroscuroParticipant:
        """Instantiate one participant from the precomputed derivations."""
        return ChiaroscuroParticipant(
            node_id=node_id,
            series_values=self.data[node_id],
            initial_centroids=self.initial_centroids,
            config=self.config,
            backend=self.backend,
            overlay=self.overlay,
            noise_contributor=node_id in self.noise_contributor_ids,
            n_noise_contributors=self.n_noise_contributors,
            seed=self.participant_seeds[node_id],
        )

    def make_participants(self) -> list[ChiaroscuroParticipant]:
        """Instantiate every participant (the cycle engine's population)."""
        return [self.make_participant(node_id) for node_id in range(self.n_participants)]


def build_run_setup(
    collection: TimeSeriesCollection,
    config: ChiaroscuroConfig,
    normalize: bool = True,
    n_tracked_participants: int = 4,
) -> RunSetup:
    """Derive a :class:`RunSetup` (backend, overlay, seeds) for one run.

    The master-seed randomness is consumed in exactly the order the
    historical inline code consumed it — noise-contributor choice, one seed
    per participant, tracked-participant choice — so runs are bit-identical
    to pre-refactor builds.
    """
    n_participants = len(collection)
    if config.crypto.threshold > n_participants:
        raise ConfigurationError(
            "decryption threshold exceeds the number of participants "
            f"({config.crypto.threshold} > {n_participants})"
        )
    if config.kmeans.n_clusters > n_participants:
        raise ConfigurationError(
            "cannot ask for more clusters than participants "
            f"({config.kmeans.n_clusters} > {n_participants})"
        )
    value_bound = config.privacy.value_bound
    if normalize:
        data, transform = normalize_collection(collection, value_bound)
    else:
        data = np.clip(collection.to_matrix(), 0.0, value_bound)
        transform = {"offset": 0.0, "scale": 1.0, "value_bound": value_bound}
    n_participants, series_length = data.shape

    # Each iteration performs at most ~2 * cycles averaging steps per estimate
    # (own exchanges plus exchanges initiated by peers).
    total_halvings = (
        2 * config.gossip.cycles_per_aggregation * config.gossip.exchanges_per_cycle + 4
    )
    # Estimate halvings compound across merges (both parties adopt the same
    # averaged estimate), empirically reaching ~6 per cycle in the worst
    # lineage; the packed slot headroom must absorb that whole depth.
    packed_halving_budget = (
        6 * config.gossip.cycles_per_aggregation * config.gossip.exchanges_per_cycle + 16
    )
    backend = make_backend(
        config.crypto.backend,
        key_bits=config.crypto.key_bits,
        degree=config.crypto.degree,
        threshold=config.crypto.threshold,
        n_shares=config.crypto.n_key_shares,
        encoding_scale=config.crypto.encoding_scale,
        packing=config.crypto.packing,
        packing_value_bound=_packed_slot_bound(config, series_length, value_bound),
        packing_weight_bits=packed_halving_budget,
        fastmath=config.crypto.fastmath,
    )
    if hasattr(backend, "configure_pool"):
        # Size the amortized blinder pool from the cost model's per-round
        # encryption demand (deferred import: repro.analysis imports this
        # module back for the quality comparisons).
        from ..analysis.costs import ProtocolWorkload

        demand = ProtocolWorkload(
            n_clusters=config.kmeans.n_clusters,
            series_length=series_length,
            iterations=config.kmeans.max_iterations,
            gossip_cycles=config.gossip.cycles_per_aggregation,
            exchanges_per_cycle=config.gossip.exchanges_per_cycle,
            threshold=config.crypto.threshold,
            slots=backend.packing.slots if backend.packing is not None else 1,
            amortized_encryptions=True,
        )
        backend.configure_pool(
            demand.encryptions_per_iteration,
            pool_file=config.crypto.pool_file or None,
        )
    check_headroom(
        backend,
        value_bound=max(value_bound, 1.0),
        total_halvings=total_halvings,
    )
    overlay = build_overlay(
        n_participants,
        topology=config.gossip.topology,
        degree=config.gossip.topology_degree,
        rewiring_probability=config.gossip.rewiring_probability,
        seed=config.simulation.seed,
    )
    initial_centroids = public_initial_centroids(
        config.kmeans.n_clusters,
        series_length,
        value_low=0.0,
        value_high=value_bound,
        seed=config.simulation.seed,
    )
    master_rng = np.random.default_rng(config.simulation.seed)
    n_noise_contributors = min(config.privacy.noise_shares, n_participants)
    noise_contributor_ids = set(
        master_rng.choice(n_participants, size=n_noise_contributors, replace=False).tolist()
    )
    participant_seeds = [
        int(master_rng.integers(0, 2**31 - 1)) for _ in range(n_participants)
    ]
    tracked_ids = sorted(
        master_rng.choice(
            n_participants,
            size=min(n_tracked_participants, n_participants),
            replace=False,
        ).tolist()
    )
    return RunSetup(
        config=config,
        data=data,
        transform=transform,
        backend=backend,
        overlay=overlay,
        initial_centroids=initial_centroids,
        noise_contributor_ids=noise_contributor_ids,
        n_noise_contributors=n_noise_contributors,
        participant_seeds=participant_seeds,
        tracked_ids=tracked_ids,
    )


@dataclass(frozen=True)
class ParticipantOutcome:
    """The per-participant facts both execution modes report identically."""

    node_id: int
    profiles: np.ndarray
    stop_reason: str
    spent_epsilon: float
    iteration: int


def outcome_of(participant: ChiaroscuroParticipant) -> ParticipantOutcome:
    """Snapshot one participant's end-of-run outcome."""
    profiles = (
        participant.final_profiles
        if participant.final_profiles is not None
        else participant.centroids
    )
    return ParticipantOutcome(
        node_id=participant.node_id,
        profiles=profiles.copy(),
        stop_reason=participant.stop_reason or "unfinished",
        spent_epsilon=participant.accountant.spent_epsilon,
        iteration=participant.iteration,
    )


def assemble_result(
    setup: RunSetup,
    collection_name: str,
    outcomes: Sequence[ParticipantOutcome],
    messages_sent: int,
    bytes_sent: int,
    bytes_modelled: int,
    crypto_counts: dict[str, int],
    log: ExecutionLog,
    extra_metadata: dict[str, Any] | None = None,
) -> ChiaroscuroResult:
    """Build the :class:`ChiaroscuroResult` both execution modes return."""
    ordered = sorted(outcomes, key=lambda outcome: outcome.node_id)
    data = setup.data
    profiles_stack = np.stack([outcome.profiles for outcome in ordered])
    profiles = profiles_stack.mean(axis=0)
    assignments = assign_to_centroids(data, profiles)
    inertia = compute_inertia(data, profiles, assignments)
    epsilon_spent = max(outcome.spent_epsilon for outcome in ordered)
    n_iterations = max(outcome.iteration for outcome in ordered)
    stop_reasons: dict[str, int] = {}
    for outcome in ordered:
        stop_reasons[outcome.stop_reason] = stop_reasons.get(outcome.stop_reason, 0) + 1
    converged = any(
        outcome.stop_reason in ("converged", "synchronized") for outcome in ordered
    )
    guarantee = guarantee_for_run(
        epsilon=max(epsilon_spent, 1e-12),
        cycles=setup.config.gossip.cycles_per_aggregation,
        n_participants=setup.n_participants,
    )
    wire_info = setup.wire_info()
    # Phase-tagged compute accounting: price the full operation counter
    # (pooled encryptions and rerandomizations included) with the committed
    # benchmark profile, splitting input-independent blinder precomputation
    # (offline) from the hot path (online).  Deferred import: repro.analysis
    # imports this module back for the quality comparisons.
    from ..analysis.costs import load_reference_profile

    profile = load_reference_profile(fastmath=setup.config.crypto.fastmath)
    offline_seconds: float | None = None
    online_seconds: float | None = None
    phase_ops: dict[str, dict[str, int]] | None = None
    if profile is not None:
        phases = profile.phase_seconds_for_counts(crypto_counts)
        offline_seconds = phases["offline_seconds"]
        online_seconds = phases["online_seconds"]
        served = (
            int(crypto_counts.get("pooled_encryptions", 0))
            + int(crypto_counts.get("rerandomizations", 0))
            if profile.pooled_encryption_seconds > 0
            else 0
        )
        phase_ops = {
            "offline": {"blinder_exponentiations": served},
            "online": {str(key): int(value) for key, value in crypto_counts.items()},
        }
    costs = CostSummary(
        n_participants=setup.n_participants,
        n_iterations=n_iterations,
        messages_sent=messages_sent,
        bytes_sent=bytes_sent,
        encryptions=crypto_counts["encryptions"],
        homomorphic_additions=crypto_counts["additions"],
        partial_decryptions=crypto_counts["partial_decryptions"],
        combinations=crypto_counts["combinations"],
        bytes_sent_modelled=bytes_modelled,
        wire=wire_info["mode"],
        iteration_costs=tuple(
            {str(key): float(value) for key, value in record.costs.items()}
            for record in log
        ),
        offline_seconds=offline_seconds,
        online_seconds=online_seconds,
        phase_ops=phase_ops,
    )
    per_participant_profiles = {
        outcome.node_id: outcome.profiles.copy() for outcome in ordered
    }
    metadata: dict[str, Any] = {
        "normalization": setup.transform,
        "tracked_participants": setup.tracked_ids,
        "dataset": collection_name,
        "packing": setup.packing_info(),
        "fastmath": setup.fastmath_info(),
        "wire": wire_info,
    }
    if extra_metadata:
        metadata.update(extra_metadata)
    return ChiaroscuroResult(
        profiles=profiles,
        assignments=assignments,
        per_participant_profiles=per_participant_profiles,
        inertia=inertia,
        n_iterations=n_iterations,
        converged=converged,
        stop_reasons=stop_reasons,
        epsilon_spent=epsilon_spent,
        guarantee=guarantee,
        costs=costs,
        log=log,
        metadata=metadata,
    )


class _RunObserver:
    """Engine observer that fills the execution log as iterations complete."""

    def __init__(
        self,
        participants: list[ChiaroscuroParticipant],
        data: np.ndarray,
        initial_centroids: np.ndarray,
        tracked_ids: list[int],
        engine: CycleEngine,
        backend: CipherBackend,
        log: ExecutionLog,
    ) -> None:
        self._participants = participants
        self._data = data
        self._previous_centroids = initial_centroids.copy()
        self._tracked_ids = tracked_ids
        self._engine = engine
        self._backend = backend
        self._log = log
        self._records_emitted = 0
        self._last_messages = 0
        self._last_bytes = 0
        self._last_crypto = backend.counter.as_dict()

    def _noise_free_means(self, iteration_index: int, reference: np.ndarray) -> np.ndarray:
        """Means the iteration would produce without noise or gossip error."""
        n_clusters = reference.shape[0]
        means = reference.copy()
        assignments: list[tuple[int, int]] = []
        for participant in self._participants:
            if len(participant.assignment_history) > iteration_index:
                assignments.append(
                    (participant.node_id, participant.assignment_history[iteration_index])
                )
        for cluster in range(n_clusters):
            member_ids = [node_id for node_id, assigned in assignments if assigned == cluster]
            if member_ids:
                means[cluster] = self._data[member_ids].mean(axis=0)
        return means

    def after_cycle(self, engine: CycleEngine, cycle: int) -> None:
        completed = max(len(p.perturbed_means_history) for p in self._participants)
        while self._records_emitted < completed:
            index = self._records_emitted
            reporter = next(
                p for p in self._participants if len(p.perturbed_means_history) > index
            )
            perturbed = reporter.perturbed_means_history[index]
            crypto_now = self._backend.counter.as_dict()
            costs = {
                "messages_sent": float(engine.network.total.messages_sent - self._last_messages),
                "bytes_sent": float(engine.network.total.bytes_sent - self._last_bytes),
            }
            for key, value in crypto_now.items():
                costs[key] = float(value - self._last_crypto.get(key, 0))
            self._last_messages = engine.network.total.messages_sent
            self._last_bytes = engine.network.total.bytes_sent
            self._last_crypto = crypto_now
            tracked = {
                node_id: self._participants[node_id].assignment_history[index]
                for node_id in self._tracked_ids
                if len(self._participants[node_id].assignment_history) > index
            }
            epsilon = 0.0
            spends = list(reporter.accountant)
            if index < len(spends):
                epsilon = spends[index].epsilon
            record = IterationRecord(
                iteration=index + 1,
                epsilon_spent=epsilon,
                centroids_before=self._previous_centroids.copy(),
                perturbed_means=perturbed.copy(),
                noise_free_means=self._noise_free_means(index, perturbed),
                displacement=reporter.displacement_history[index],
                tracked_assignments=tracked,
                costs=costs,
            )
            self._log.append(record)
            self._previous_centroids = perturbed.copy()
            self._records_emitted += 1


def run_chiaroscuro(
    collection: TimeSeriesCollection,
    config: ChiaroscuroConfig | None = None,
    normalize: bool = True,
    n_tracked_participants: int = 4,
    max_extra_cycles: int = 50,
) -> ChiaroscuroResult:
    """Run the complete Chiaroscuro protocol on a collection of time-series.

    Parameters
    ----------
    collection:
        One series per participant; the population size is the collection
        size (the ``simulation.n_participants`` configuration field is
        ignored in favour of it).
    config:
        Full protocol configuration (library defaults when omitted).
    normalize:
        Min-max normalise the data into [0, value_bound] before running
        (recommended; the normalisation parameters are returned in the result
        metadata so profiles can be mapped back to original units).
    n_tracked_participants:
        Number of participants whose per-iteration assignment is recorded in
        the execution log (the demo GUI follows four of them).
    max_extra_cycles:
        Safety margin added to the theoretical number of cycles needed.

    Returns
    -------
    ChiaroscuroResult
    """
    config = config if config is not None else ChiaroscuroConfig()
    if config.runtime.mode == "live":
        # Deferred import: the live runner imports this module back for the
        # shared setup/assembly helpers.
        from ..net.live import run_live_chiaroscuro

        return run_live_chiaroscuro(
            collection,
            config,
            normalize=normalize,
            n_tracked_participants=n_tracked_participants,
            max_extra_cycles=max_extra_cycles,
        )
    if config.runtime.engine == "slab":
        # Deferred import: the slab runner imports this module back for the
        # shared normalisation/setup helpers.
        from .slab_runner import run_slab_chiaroscuro

        return run_slab_chiaroscuro(
            collection,
            config,
            normalize=normalize,
            n_tracked_participants=n_tracked_participants,
            max_extra_cycles=max_extra_cycles,
        )
    setup = build_run_setup(
        collection, config, normalize=normalize,
        n_tracked_participants=n_tracked_participants,
    )
    participants = setup.make_participants()
    engine = CycleEngine(
        participants,
        seed=config.simulation.seed,
        churn_rate=config.simulation.churn_rate,
        rejoin_rate=config.simulation.rejoin_rate,
        drop_probability=config.gossip.drop_probability,
        corruption_rate=config.network.corruption_rate,
    )
    log = ExecutionLog(metadata=run_log_metadata(setup, collection.name))
    observer = _RunObserver(
        participants, setup.data, setup.initial_centroids, setup.tracked_ids,
        engine, setup.backend, log,
    )
    engine.add_observer(observer)

    max_cycles = plan_max_cycles(config, max_extra_cycles)
    engine.run(max_cycles, stop_when=lambda eng: all(p.is_done for p in participants))
    # Finish any straggler deterministically (e.g. nodes offline at the end).
    for participant in participants:
        if not participant.is_done:
            participant.online = True
    remaining_guard = 0
    while not all(p.is_done for p in participants) and remaining_guard < max_cycles:
        engine.run_cycle()
        remaining_guard += 1

    return assemble_result(
        setup,
        collection.name,
        [outcome_of(participant) for participant in participants],
        messages_sent=engine.network.total.messages_sent,
        bytes_sent=engine.network.total.bytes_sent,
        bytes_modelled=engine.network.total.bytes_modelled,
        crypto_counts=setup.backend.counter.as_dict(),
        log=log,
    )


def plan_max_cycles(config: ChiaroscuroConfig, max_extra_cycles: int = 50) -> int:
    """Cycle budget of a run (shared by the cycle engine and the live runner)."""
    cycles_per_iteration = config.gossip.cycles_per_aggregation + 3
    return config.kmeans.max_iterations * cycles_per_iteration + max_extra_cycles


def run_log_metadata(setup: RunSetup, collection_name: str) -> dict[str, Any]:
    """Execution-log metadata both execution modes record identically."""
    return {
        "dataset": collection_name,
        "n_participants": setup.n_participants,
        "series_length": setup.series_length,
        "config": setup.config.describe(),
        "normalization": setup.transform,
        "tracked_participants": setup.tracked_ids,
        "packing": setup.packing_info(),
        "fastmath": setup.fastmath_info(),
        "wire": setup.wire_info(),
    }
