"""Chiaroscuro core: diptych, participant state machine, runner and results."""

from .collaborative import (
    BatchDecryptionOutcome,
    DecryptionOutcome,
    collaborative_decrypt,
    collaborative_decrypt_many,
    share_holder_ids,
    share_index_of,
)
from .convergence import TerminationCriteria
from .diptych import Diptych, build_contribution, merge_diptychs
from .execution_log import ExecutionLog, IterationRecord
from .participant import ChiaroscuroParticipant, Phase
from .result import ChiaroscuroResult, CostSummary
from .runner import denormalize_profiles, normalize_collection, run_chiaroscuro

__all__ = [
    "Diptych",
    "build_contribution",
    "merge_diptychs",
    "ChiaroscuroParticipant",
    "Phase",
    "TerminationCriteria",
    "DecryptionOutcome",
    "BatchDecryptionOutcome",
    "collaborative_decrypt",
    "collaborative_decrypt_many",
    "share_holder_ids",
    "share_index_of",
    "ExecutionLog",
    "IterationRecord",
    "ChiaroscuroResult",
    "CostSummary",
    "run_chiaroscuro",
    "normalize_collection",
    "denormalize_profiles",
]
