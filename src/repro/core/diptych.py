"""The Diptych data structure (paper, Section II.B).

The Diptych is the two-sided structure each participant maintains:

* the **clear side** — the perturbed centroids, cleartext but differentially
  private, used by the local assignment and convergence steps;
* the **encrypted side** — the per-cluster encrypted aggregation estimates
  (the gossiped averages of member series and membership indicators, plus the
  gossiped averages of the noise-shares), used by the distributed computation
  step.

Every per-cluster estimate is a vector of length ``series_length + 1``: the
first ``series_length`` components average the member series (times the
membership indicator), the last component averages the indicator itself, so
the cluster mean is recovered after decryption as ``sum_part / count_part``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_2d_float_array, check_positive_int
from ..crypto.backends import CipherBackend
from ..exceptions import ProtocolError
from ..gossip.encrypted_sum import EncryptedEstimate, average_estimates, fresh_estimate


@dataclass
class Diptych:
    """One participant's diptych for one iteration.

    Attributes
    ----------
    centroids:
        The perturbed cleartext centroids of the current iteration
        (``(k, series_length)``).
    data_estimates:
        Per-cluster encrypted estimates of the averaged member contributions
        (k entries, each of length ``series_length + 1``).
    noise_estimates:
        Per-cluster encrypted estimates of the averaged noise-shares (same
        shapes as ``data_estimates``).
    """

    centroids: np.ndarray
    data_estimates: list[EncryptedEstimate] = field(default_factory=list)
    noise_estimates: list[EncryptedEstimate] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.centroids = as_2d_float_array(self.centroids, "centroids")

    @property
    def n_clusters(self) -> int:
        """Number of clusters k."""
        return self.centroids.shape[0]

    @property
    def series_length(self) -> int:
        """Length of the time-series (and of the centroids)."""
        return self.centroids.shape[1]

    def check_consistent(self) -> None:
        """Raise :class:`ProtocolError` when the two sides disagree on shapes."""
        if len(self.data_estimates) != self.n_clusters:
            raise ProtocolError(
                f"expected {self.n_clusters} data estimates, got {len(self.data_estimates)}"
            )
        if len(self.noise_estimates) != self.n_clusters:
            raise ProtocolError(
                f"expected {self.n_clusters} noise estimates, got {len(self.noise_estimates)}"
            )
        expected_length = self.series_length + 1
        for estimate in list(self.data_estimates) + list(self.noise_estimates):
            if len(estimate) != expected_length:
                raise ProtocolError(
                    f"estimate length {len(estimate)} differs from expected {expected_length}"
                )


def build_contribution(
    backend: CipherBackend,
    series_values: np.ndarray,
    assigned_cluster: int,
    n_clusters: int,
    noise_shares: list[np.ndarray] | None = None,
) -> tuple[list[EncryptedEstimate], list[EncryptedEstimate]]:
    """Build a participant's initial encrypted contribution for one iteration.

    This implements the local part of the assignment step (paper, Section
    II.B, step 1): the estimate of the assigned cluster is initialised with
    the encryption of the participant's series (and indicator 1), every other
    cluster with encryptions of zero; the noise estimates are initialised
    with this participant's noise-shares (zero vectors for participants not
    selected as noise contributors).

    Parameters
    ----------
    backend:
        Cipher backend performing the encryptions.
    series_values:
        The participant's (clipped) time-series values.
    assigned_cluster:
        Index of the centroid closest to the participant's series.
    n_clusters:
        Number of clusters k.
    noise_shares:
        Optional per-cluster noise-share vectors of length
        ``series_length + 1``; ``None`` means this participant contributes no
        noise this iteration.
    """
    check_positive_int(n_clusters, "n_clusters")
    series_values = np.asarray(series_values, dtype=float)
    if series_values.ndim != 1:
        raise ProtocolError("series_values must be one-dimensional")
    if not 0 <= assigned_cluster < n_clusters:
        raise ProtocolError(
            f"assigned cluster {assigned_cluster} outside [0, {n_clusters})"
        )
    length = series_values.shape[0] + 1
    if noise_shares is not None and len(noise_shares) != n_clusters:
        raise ProtocolError("noise_shares must contain one vector per cluster")

    data_estimates: list[EncryptedEstimate] = []
    noise_estimates: list[EncryptedEstimate] = []
    zero_vector = np.zeros(length)
    for cluster in range(n_clusters):
        if cluster == assigned_cluster:
            contribution = np.concatenate([series_values, [1.0]])
        else:
            contribution = zero_vector
        data_estimates.append(fresh_estimate(backend, contribution))
        if noise_shares is None:
            noise_estimates.append(fresh_estimate(backend, zero_vector))
        else:
            share = np.asarray(noise_shares[cluster], dtype=float)
            if share.shape[0] != length:
                raise ProtocolError(
                    f"noise share length {share.shape[0]} differs from expected {length}"
                )
            noise_estimates.append(fresh_estimate(backend, share))
    return data_estimates, noise_estimates


def merge_diptychs(
    backend: CipherBackend,
    mine: Diptych,
    theirs: Diptych,
    theirs_view: tuple[list[EncryptedEstimate], list[EncryptedEstimate]] | None = None,
) -> None:
    """Pairwise gossip exchange between two diptychs (both sides updated).

    Averages every per-cluster estimate of the two participants; this is the
    gossip computation of the encrypted means and of the encrypted noises
    (steps 2a and 2b), performed in a single exchange.

    *theirs_view*, when given, is the peer's contribution *as it travelled*
    — the (data, noise) estimate lists decoded from the received wire frame
    (and re-randomized per hop).  The averages are then computed against
    that view instead of the peer's in-memory objects, while both
    participants still adopt the single merged result (in the real protocol
    each side computes the identical plaintext average locally; the shared
    object is the cycle simulation's shortcut for that).
    """
    mine.check_consistent()
    theirs.check_consistent()
    if mine.n_clusters != theirs.n_clusters or mine.series_length != theirs.series_length:
        raise ProtocolError("cannot merge diptychs with different shapes")
    if theirs_view is None:
        view_data, view_noise = theirs.data_estimates, theirs.noise_estimates
    else:
        view_data, view_noise = theirs_view
        if len(view_data) != mine.n_clusters or len(view_noise) != mine.n_clusters:
            raise ProtocolError("peer view does not carry one estimate per cluster")
    for cluster in range(mine.n_clusters):
        averaged_data = average_estimates(
            backend, mine.data_estimates[cluster], view_data[cluster]
        )
        averaged_noise = average_estimates(
            backend, mine.noise_estimates[cluster], view_noise[cluster]
        )
        mine.data_estimates[cluster] = averaged_data
        theirs.data_estimates[cluster] = averaged_data
        mine.noise_estimates[cluster] = averaged_noise
        theirs.noise_estimates[cluster] = averaged_noise
