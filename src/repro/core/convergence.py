"""Termination criteria of the Chiaroscuro execution sequence.

The basic criterion is the one of Section II.A: stop when the distance
between the perturbed centroids and the perturbed means falls below a
threshold, or when the maximum number of iterations is reached.  Footnote 2
of the paper notes that Chiaroscuro "supports the addition of other
termination criteria for coping with the impact of the differentially-private
perturbation on the convergence of centroids (e.g., monitoring centroids
quality)"; the optional patience criterion below implements that idea by
stopping once the displacement stops improving for a configured number of
consecutive iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_non_negative_float, check_positive_int


@dataclass
class TerminationCriteria:
    """Stateful termination decision shared by the protocol and baselines.

    Parameters
    ----------
    convergence_threshold:
        Displacement below which the run is declared converged.
    max_iterations:
        Hard cap on the number of iterations.
    track_quality:
        Enable the patience criterion (footnote 2 of the paper).
    quality_patience:
        Number of consecutive non-improving iterations tolerated when
        ``track_quality`` is enabled.
    """

    convergence_threshold: float = 1e-3
    max_iterations: int = 15
    track_quality: bool = True
    quality_patience: int = 3

    def __post_init__(self) -> None:
        check_non_negative_float(self.convergence_threshold, "convergence_threshold")
        check_positive_int(self.max_iterations, "max_iterations")
        check_positive_int(self.quality_patience, "quality_patience")
        self._best_displacement: float | None = None
        self._non_improving = 0

    def reset(self) -> None:
        """Forget the patience state (between runs)."""
        self._best_displacement = None
        self._non_improving = 0

    def should_stop(self, iteration: int, displacement: float) -> tuple[bool, str]:
        """Decide whether to stop after *iteration* with the given displacement.

        Returns ``(stop, reason)`` where *reason* is one of ``"converged"``,
        ``"max_iterations"``, ``"quality_plateau"`` or ``""`` (continue).
        """
        displacement = check_non_negative_float(displacement, "displacement")
        if displacement <= self.convergence_threshold:
            return True, "converged"
        if iteration >= self.max_iterations:
            return True, "max_iterations"
        if self.track_quality:
            if self._best_displacement is None or displacement < self._best_displacement:
                self._best_displacement = displacement
                self._non_improving = 0
            else:
                self._non_improving += 1
                if self._non_improving >= self.quality_patience:
                    return True, "quality_plateau"
        return False, ""
