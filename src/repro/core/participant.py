"""The Chiaroscuro participant: one personal device's state machine.

Every participant runs the same code (the paper stresses that the execution
sequence "is iterative, identical for all participants, and proceeds without
any global synchronization").  The participant is a :class:`~repro.simulation.node.Node`
whose ``next_cycle`` method implements the execution sequence of Section II.B:

* **ASSIGN** (local) — find the closest perturbed centroid, draw the optional
  noise-shares, and initialise the encrypted side of the diptych;
* **GOSSIP** (distributed) — pairwise gossip exchanges averaging the
  encrypted data and noise estimates with peers working on the same
  iteration; late peers adopt the more advanced iteration they observe;
* **DECRYPT** (distributed) — homomorphically add the noise estimates to the
  data estimates and run the collaborative decryption with the committee;
* **CONVERGE** (local, folded into the decrypt phase) — rebuild the perturbed
  means, smooth them, check the termination criteria, and either finish or
  start the next iteration with the perturbed means as new centroids.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from ..clustering.kmeans import centroid_displacement, reseed_centroid
from ..clustering.smoothing import smooth_centroids
from ..config import ChiaroscuroConfig
from ..crypto.backends import CipherBackend
from ..crypto.wire import normalize_wire, wire_ciphertext_bytes
from ..exceptions import ProtocolError, ThresholdError, WireFormatError
from ..gossip.encrypted_sum import (
    EncryptedEstimate,
    add_estimates,
    estimate_payload_bytes,
    rerandomize_estimate,
)
from ..gossip.overlay import Overlay
from ..privacy.budget import PrivacyAccountant
from ..privacy.laplace import SensitivityModel
from ..privacy.noise_shares import NoiseShareSpec, draw_noise_share
from ..privacy.strategies import BudgetStrategy, make_budget_strategy
from ..simulation.engine import CycleEngine
from ..simulation.node import Node
from .collaborative import collaborative_decrypt, collaborative_decrypt_many
from .convergence import TerminationCriteria
from .diptych import Diptych, build_contribution, merge_diptychs


class Phase(enum.Enum):
    """Protocol phases of a participant."""

    ASSIGN = "assign"
    GOSSIP = "gossip"
    DECRYPT = "decrypt"
    DONE = "done"


def gossip_decision(peer: "ChiaroscuroParticipant", initiator_iteration: int) -> str:
    """What one gossip attempt does, given the sampled peer's state.

    Returns ``"sync"`` (adopt the finished peer's profiles), ``"adopt"``
    (jump to the peer's more advanced iteration), ``"skip"`` (peer cannot
    take part this cycle) or ``"merge"`` (run the pairwise exchange).  This
    single predicate — including its evaluation order — is shared by the
    cycle engine's gossip step (which reads the peer from shared memory)
    and the live runner's probe handler (which answers over the socket), so
    the two execution modes cannot diverge in the decision.
    """
    if peer.is_done and peer.final_profiles is not None:
        return "sync"
    if peer.iteration > initiator_iteration and not peer.is_done:
        return "adopt"
    if (
        peer.phase is not Phase.GOSSIP
        or peer.iteration != initiator_iteration
        or peer.diptych is None
    ):
        return "skip"
    return "merge"


def peer_sampling_stream(node_id: int) -> str:
    """Name of one participant's peer-sampling random stream.

    Both the cycle engine's gossip step and the live runner's driver draw
    this node's gossip peers from the stream registered under this name, so
    the two execution modes consume identical peer-sampling randomness.
    """
    return f"chiaroscuro.peer_sampling.{node_id}"


class ChiaroscuroParticipant(Node):
    """One simulated personal device participating in the clustering.

    Parameters
    ----------
    node_id:
        Simulation node id.
    series_values:
        The participant's personal time-series, already clipped to the public
        value bound.
    initial_centroids:
        The shared, data-independent initial centroids (every participant
        derives the same ones from the public seed).
    config:
        Full protocol configuration.
    backend:
        Shared cipher backend (public key material is common; the private key
        shares are held by the decryption committee).
    overlay:
        Gossip overlay used for peer sampling.
    noise_contributor:
        Whether this participant draws noise-shares each iteration.
    n_noise_contributors:
        Total number of noise contributors (defines the share distribution).
    seed:
        Per-participant random seed (derived from the master seed).
    """

    def __init__(
        self,
        node_id: int,
        series_values: np.ndarray,
        initial_centroids: np.ndarray,
        config: ChiaroscuroConfig,
        backend: CipherBackend,
        overlay: Overlay,
        noise_contributor: bool,
        n_noise_contributors: int,
        seed: int = 0,
    ) -> None:
        super().__init__(node_id)
        self.series_values = np.asarray(series_values, dtype=float)
        if self.series_values.ndim != 1:
            raise ProtocolError("series_values must be one-dimensional")
        self.config = config
        self.backend = backend
        self.overlay = overlay
        self.wire_enabled = normalize_wire(config.network.wire) != "off"
        self.noise_contributor = noise_contributor
        self.n_noise_contributors = max(1, int(n_noise_contributors))
        self._rng = np.random.default_rng(seed)

        self.centroids = np.asarray(initial_centroids, dtype=float).copy()
        if self.centroids.shape[1] != self.series_values.shape[0]:
            raise ProtocolError(
                "centroid length differs from the participant's series length"
            )
        self.phase = Phase.ASSIGN
        self.iteration = 0
        self.diptych: Diptych | None = None
        self.gossip_cycles_done = 0
        self.assigned_cluster: int | None = None
        self.assignment_history: list[int] = []
        self.displacement_history: list[float] = []
        self.perturbed_means_history: list[np.ndarray] = []
        self.final_profiles: np.ndarray | None = None
        self.stop_reason: str = ""
        self.last_displacement: float | None = None

        self.sensitivity = SensitivityModel(
            series_length=self.series_values.shape[0],
            value_bound=config.privacy.value_bound,
            count_bound=config.privacy.count_bound,
        )
        self.accountant = PrivacyAccountant(
            config.privacy.epsilon, config.privacy.delta_slack
        )
        self.strategy: BudgetStrategy = make_budget_strategy(
            config.privacy.budget_strategy,
            config.privacy.epsilon,
            config.kmeans.max_iterations,
            geometric_ratio=config.privacy.geometric_ratio,
        )
        self.termination = TerminationCriteria(
            convergence_threshold=config.kmeans.convergence_threshold,
            max_iterations=config.kmeans.max_iterations,
            track_quality=config.kmeans.track_quality,
            quality_patience=config.kmeans.quality_patience,
        )

    # ------------------------------------------------------------------ properties
    @property
    def is_done(self) -> bool:
        """Whether this participant has produced its final profiles."""
        return self.phase is Phase.DONE

    @property
    def n_clusters(self) -> int:
        """Number of clusters k."""
        return self.centroids.shape[0]

    @property
    def series_length(self) -> int:
        """Length of the participant's series."""
        return self.series_values.shape[0]

    # ------------------------------------------------------------------ execution sequence
    def next_cycle(self, engine: CycleEngine, cycle: int) -> None:
        if self.phase is Phase.DONE:
            return
        if self.phase is Phase.ASSIGN:
            self._assignment_step()
            return
        if self.phase is Phase.GOSSIP:
            self._gossip_step(engine)
            return
        if self.phase is Phase.DECRYPT:
            self._decrypt_and_converge(engine)

    # -- Step 1: assignment (local) -------------------------------------------------
    def _closest_centroid(self) -> int:
        distances = np.linalg.norm(self.centroids - self.series_values[None, :], axis=1)
        return int(np.argmin(distances))

    def _iteration_epsilon(self) -> float:
        progress = None
        if self.last_displacement is not None:
            # Normalise the displacement into a rough [0, 1] progress signal.
            scale = max(self.config.privacy.value_bound, 1e-12)
            progress = float(np.clip(1.0 - self.last_displacement / scale, 0.0, 1.0))
        return self.strategy.epsilon_for_iteration(
            self.iteration - 1, self.accountant.remaining_epsilon, progress=progress
        )

    def _draw_noise_shares(self, epsilon_iteration: float) -> list[np.ndarray] | None:
        if not self.noise_contributor:
            return None
        scale = self.sensitivity.laplace_scale(epsilon_iteration)
        spec = NoiseShareSpec(
            scale=scale,
            n_shares=self.n_noise_contributors,
            vector_length=self.series_length + 1,
        )
        return [draw_noise_share(spec, self._rng) for _ in range(self.n_clusters)]

    def _assignment_step(self) -> None:
        self.iteration += 1
        epsilon_iteration = self._iteration_epsilon()
        if epsilon_iteration <= 0 or not self.accountant.can_spend(epsilon_iteration):
            self._finish("budget_exhausted")
            return
        self.accountant.spend(epsilon_iteration, label=f"iteration-{self.iteration}")
        self.assigned_cluster = self._closest_centroid()
        self.assignment_history.append(self.assigned_cluster)
        noise_shares = self._draw_noise_shares(epsilon_iteration)
        data_estimates, noise_estimates = build_contribution(
            self.backend,
            self.series_values,
            self.assigned_cluster,
            self.n_clusters,
            noise_shares=noise_shares,
        )
        self.diptych = Diptych(
            centroids=self.centroids,
            data_estimates=data_estimates,
            noise_estimates=noise_estimates,
        )
        self.gossip_cycles_done = 0
        self.phase = Phase.GOSSIP

    # -- Step 2a/2b: gossip computation (distributed) --------------------------------
    def adopt_peer_state(self, centroids: np.ndarray, iteration: int) -> None:
        """Late-participant synchronisation: jump to an observed iteration.

        Shared by the cycle engine (which reads the peer's state directly)
        and the live runner (which receives it in a gossip probe reply):
        both modes must make this transition identically.
        """
        self.centroids = np.asarray(centroids, dtype=float).copy()
        self.iteration = iteration - 1
        self.phase = Phase.ASSIGN
        self._assignment_step()

    def synchronize_with_profiles(self, profiles: np.ndarray) -> None:
        """Adopt a finished peer's profiles (the "late participants simply
        synchronize" behaviour); shared by both execution modes."""
        self.centroids = np.asarray(profiles, dtype=float).copy()
        self._finish("synchronized")

    def _adopt_iteration(self, peer: "ChiaroscuroParticipant") -> None:
        """Late-participant synchronisation: jump to the peer's iteration."""
        self.adopt_peer_state(peer.centroids, peer.iteration)

    def _forwarded_estimates(
        self, diptych: Diptych
    ) -> tuple[list[EncryptedEstimate], list[EncryptedEstimate]]:
        """Re-randomized copies of a diptych's estimates, ready to forward.

        Only these copies ever travel (or stand in for travelling, with the
        wire format off): the stored estimates never leave the device, so a
        hop-by-hop observer sees unlinkable ciphertexts that decrypt to the
        same plaintexts.
        """
        data = [rerandomize_estimate(self.backend, estimate)
                for estimate in diptych.data_estimates]
        noise = [rerandomize_estimate(self.backend, estimate)
                 for estimate in diptych.noise_estimates]
        return data, noise

    def _wire_exchange(
        self,
        engine: CycleEngine,
        peer: "ChiaroscuroParticipant",
        peer_id: int,
        outgoing: tuple[list[EncryptedEstimate], list[EncryptedEstimate]],
        modelled: int,
    ) -> bool:
        """One gossip exchange over serialized byte frames.

        Returns True when the exchange completed (diptychs merged from the
        decoded reply), False when the request was dropped or either frame
        arrived corrupted.  A dropped *reply* is still merged: the pairwise
        exchange is atomic in the cycle model (the responder has already
        applied the average), matching the reference transport bit for bit.
        """
        from ..gossip.messages import DiptychExchange, DiptychReply, deserialize

        width = wire_ciphertext_bytes(self.backend)
        data_out, noise_out = outgoing
        frame = DiptychExchange(
            iteration=self.iteration, data_estimates=tuple(data_out),
            noise_estimates=tuple(noise_out), ciphertext_bytes=width,
        ).serialize()
        received = engine.transmit(
            self.node_id, peer_id, "diptych-exchange", frame, modelled_bytes=modelled
        )
        if received is None:
            return False
        try:
            deserialize(received)
        except WireFormatError:
            return False  # corrupted request: the peer cannot take part
        peer_data, peer_noise = self._forwarded_estimates(peer.diptych)
        reply_frame = DiptychReply(
            iteration=peer.iteration, data_estimates=tuple(peer_data),
            noise_estimates=tuple(peer_noise), ciphertext_bytes=width,
        ).serialize()
        reply = engine.transmit(
            peer_id, self.node_id, "diptych-reply", reply_frame,
            modelled_bytes=modelled,
        )
        if reply is None:
            reply = reply_frame
        try:
            message = deserialize(reply)
        except WireFormatError:
            return False  # corrupted reply: treat like a loss
        merge_diptychs(
            self.backend, self.diptych, peer.diptych,
            theirs_view=(list(message.data_estimates), list(message.noise_estimates)),
        )
        return True

    def _gossip_step(self, engine: CycleEngine) -> None:
        if self.diptych is None:  # pragma: no cover - state machine guarantees this
            raise ProtocolError("gossip phase reached without a diptych")
        rng = engine.rng_registry.stream(peer_sampling_stream(self.node_id))
        online = set(engine.online_ids())
        for _ in range(self.config.gossip.exchanges_per_cycle):
            peer_id = self.overlay.sample_neighbor(self.node_id, rng, online=online)
            if peer_id is None:
                break
            peer = engine.node(peer_id)
            if not isinstance(peer, ChiaroscuroParticipant):
                raise ProtocolError("gossip exchange with a non-Chiaroscuro node")
            decision = gossip_decision(peer, self.iteration)
            if decision == "sync":
                # A finished peer already holds the converged profiles.
                self.synchronize_with_profiles(peer.final_profiles)
                return
            if decision == "adopt":
                self._adopt_iteration(peer)
                if self.phase is not Phase.GOSSIP:
                    return
                continue
            if decision == "skip":
                continue
            payload = sum(
                estimate_payload_bytes(self.backend, estimate)
                for estimate in self.diptych.data_estimates + self.diptych.noise_estimates
            )
            # Per-hop unlinkability: every estimate that leaves a device is
            # a re-randomized copy (fresh ciphertext randomness, identical
            # plaintexts), so consecutive forwards cannot be linked.
            outgoing = self._forwarded_estimates(self.diptych)
            if self.wire_enabled:
                if not self._wire_exchange(engine, peer, peer_id, outgoing, payload):
                    continue
            else:
                delivered = engine.send(
                    self.node_id, peer_id, "diptych-exchange", None, size_bytes=payload
                )
                if not delivered:
                    continue
                engine.send(peer_id, self.node_id, "diptych-reply", None,
                            size_bytes=payload)
                merge_diptychs(self.backend, self.diptych, peer.diptych,
                               theirs_view=self._forwarded_estimates(peer.diptych))
        self.gossip_cycles_done += 1
        if self.gossip_cycles_done >= self.config.gossip.cycles_per_aggregation:
            self.phase = Phase.DECRYPT

    # -- Steps 2c/2d + 3: noise addition, decryption, convergence --------------------
    def combined_estimate(self, cluster: int) -> EncryptedEstimate:
        """One cluster's data estimate with its noise homomorphically added
        (step 2c); shared by both execution modes' decrypt steps."""
        return add_estimates(
            self.backend,
            self.diptych.data_estimates[cluster],
            self.diptych.noise_estimates[cluster],
        )

    def _decrypt_and_converge(self, engine: CycleEngine) -> None:
        if self.diptych is None:  # pragma: no cover - state machine guarantees this
            raise ProtocolError("decrypt phase reached without a diptych")
        try:
            if self.backend.is_packed:
                # Packed/batched mode: homomorphically add the noise to every
                # per-cluster estimate, then decrypt all of them in a single
                # committee round-trip (2·threshold messages instead of
                # 2·threshold per cluster).
                combined = [
                    self.combined_estimate(cluster)
                    for cluster in range(self.n_clusters)
                ]
                decrypted = collaborative_decrypt_many(
                    engine, self.node_id, self.backend, combined,
                    wire=self.wire_enabled,
                ).values
            else:
                # Historical layout: one noise addition and one decryption
                # round-trip per cluster, byte-for-byte as before packing.
                # Deliberately NOT routed through collaborative_decrypt_many:
                # the add for cluster c must stay interleaved with cluster
                # c's decryption so that a ThresholdError retry cycle charges
                # exactly the operations the pre-packing code charged.
                decrypted = []
                for cluster in range(self.n_clusters):
                    decrypted.append(
                        collaborative_decrypt(
                            engine, self.node_id, self.backend,
                            self.combined_estimate(cluster),
                            wire=self.wire_enabled,
                        ).values
                    )
        except ThresholdError:
            # Not enough decryption helpers online this cycle; retry later.
            return
        self._converge_from_decrypted(decrypted, engine.n_nodes)

    def _converge_from_decrypted(
        self, decrypted: Sequence[np.ndarray], n_nodes: int
    ) -> None:
        """Rebuild, repair, smooth and adopt the perturbed means (step 3).

        Everything after the collaborative decryption is local and
        transport-independent; the live runner's driver calls this with the
        values it decrypted over sockets, so both execution modes share one
        convergence implementation.
        """
        perturbed = np.empty((self.n_clusters, self.series_length))
        counts = np.zeros(self.n_clusters)
        min_count = 1.0 / (2.0 * max(1, n_nodes))
        for cluster, values in enumerate(decrypted):
            average_sum = values[: self.series_length]
            average_count = float(values[self.series_length])
            counts[cluster] = average_count
            if average_count <= min_count:
                perturbed[cluster] = self.centroids[cluster]
            else:
                perturbed[cluster] = average_sum / average_count
        bound = self.config.privacy.value_bound
        perturbed = np.clip(perturbed, 0.0, bound)
        # Empty-cluster repair: split the (noisily) largest cluster using only
        # public randomness, so every participant derives the same replacement.
        donor = int(np.argmax(counts))
        for cluster in range(self.n_clusters):
            if counts[cluster] <= min_count and cluster != donor:
                perturbed[cluster] = reseed_centroid(
                    perturbed[donor], bound, self.iteration, cluster,
                    seed=self.config.simulation.seed,
                )
        perturbed = smooth_centroids(perturbed, self.config.smoothing)
        displacement = centroid_displacement(self.centroids, perturbed)
        self.last_displacement = displacement
        self.displacement_history.append(displacement)
        self.perturbed_means_history.append(perturbed.copy())
        stop, reason = self.termination.should_stop(self.iteration, displacement)
        self.centroids = perturbed
        self.diptych = None
        if stop:
            self._finish(reason)
        else:
            self.phase = Phase.ASSIGN

    def _finish(self, reason: str) -> None:
        self.final_profiles = self.centroids.copy()
        self.stop_reason = reason
        self.phase = Phase.DONE
