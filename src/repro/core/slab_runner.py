"""Million-node slab execution path with sampled crypto.

:func:`run_slab_chiaroscuro` is the ``runtime.engine="slab"`` entry point
dispatched by :func:`~repro.core.runner.run_chiaroscuro`.  It runs the
protocol's *quality* path — assignment, noisy distributed averaging via
gossip, convergence — as vectorised struct-of-arrays operations over the
whole population (see :mod:`repro.simulation.slab`), while the *crypto* path
(Damgård–Jurik, packing, wire frames) executes for real only on a
statistically chosen node sample.  A bootstrap extrapolator calibrated
against the sample's measured per-node operation counts and wire bytes, plus
the committed ``BENCH_crypto.json`` per-operation timings, reports the
population-total crypto cost with confidence intervals (the methodology of
Section III.B: real measurement on what fits, extrapolation for the rest).

Three regimes, selected by ``runtime.crypto_sample_fraction``:

* ``1.0`` (default): the whole run is delegated to the object engine, so the
  result is bit-identical to ``engine="object"``; the cost block is attached
  with ``method="measured"`` and degenerate intervals.
* ``0 < fraction < 1``: the bulk population runs the plain slab path, the
  sample runs the full object pipeline; costs are bootstrap-extrapolated
  (``method="sampled"``).
* ``0.0``: nothing is measured; costs come from the symbolic
  :class:`~repro.analysis.costs.CostModel` (``method="modelled"``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import replace
from typing import Any, Iterator

import numpy as np

from ..analysis.costs import (
    CostModel,
    CryptoCostProfile,
    ExtrapolatedCost,
    ProtocolWorkload,
    bootstrap_extrapolate,
)
from ..clustering.kmeans import (
    centroid_displacement,
    public_initial_centroids,
    reseed_centroid,
)
from ..clustering.smoothing import smooth_centroids
from ..config import ChiaroscuroConfig
from ..exceptions import ProtocolError
from ..privacy.budget import PrivacyAccountant
from ..privacy.laplace import SensitivityModel
from ..privacy.noise_shares import NoiseShareSpec, draw_noise_share
from ..privacy.probabilistic import guarantee_for_run
from ..privacy.strategies import make_budget_strategy
from ..simulation.engine import CycleEngine
from ..simulation.rng import RngRegistry
from ..simulation.slab import (
    PopulationSlabs,
    ShardCoordinator,
    blockwise_assign,
    blockwise_cluster_sums,
    blockwise_inertia,
    pair_online,
    plan_pair_faults,
    slab_churn_step,
)
from ..timeseries import TimeSeriesCollection
from .convergence import TerminationCriteria
from .execution_log import ExecutionLog, IterationRecord
from .result import ChiaroscuroResult, CostSummary

#: Metrics the sampled-crypto extrapolator reports population totals for.
EXTRAPOLATED_METRICS = (
    "encryptions",
    "homomorphic_additions",
    "partial_decryptions",
    "combinations",
    "messages_sent",
    "bytes_sent",
    "crypto_seconds",
    "offline_seconds",
    "online_seconds",
)

#: Key prefix of the per-iteration phase wall-clock series in the execution
#: log's cost mappings (``phase_seconds.<phase>``).
PHASE_SECONDS_PREFIX = "phase_seconds."


class PhaseTimer:
    """Per-phase wall-clock accounting of the slab loop.

    Every piece of work inside the slab engine's measured window runs under
    :meth:`phase`, which charges its wall-clock both to the run totals and
    to the current iteration.  The totals therefore sum to the measured
    slab wall-clock up to loop bookkeeping overhead — that is the invariant
    the CI phase gate checks — and "shard phase X next" becomes a measured
    decision instead of a guess.
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.iteration: dict[str, float] = {}

    def start_iteration(self) -> None:
        """Reset the per-iteration accumulator (totals keep accruing)."""
        self.iteration = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Charge the wall-clock of the enclosed block to *name*."""
        begin = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - begin
            self.iteration[name] = self.iteration.get(name, 0.0) + elapsed
            self.totals[name] = self.totals.get(name, 0.0) + elapsed

    def iteration_costs(self) -> dict[str, float]:
        """The iteration's phase series as flat ``phase_seconds.*`` keys."""
        return {
            f"{PHASE_SECONDS_PREFIX}{name}": float(seconds)
            for name, seconds in self.iteration.items()
        }


def load_reference_profile(config: ChiaroscuroConfig) -> CryptoCostProfile | None:
    """Load the committed crypto benchmark profile, when one is available.

    Delegates to :func:`repro.analysis.costs.load_reference_profile` (the
    shared implementation both execution modes use for phase-tagged cost
    accounting), selecting the timing column from the run's fastmath mode.
    """
    from ..analysis.costs import load_reference_profile as _load

    return _load(fastmath=config.crypto.fastmath)


def _sample_size(config: ChiaroscuroConfig, population: int) -> int:
    """Number of nodes the real crypto pipeline runs on."""
    fraction = config.runtime.crypto_sample_fraction
    if fraction <= 0.0:
        return 0
    requested = int(np.ceil(fraction * population))
    # The sample is a complete miniature run: it needs enough nodes for the
    # decryption committee, the cluster count and a non-trivial gossip.
    floor = max(config.crypto.threshold, config.kmeans.n_clusters, 2)
    return min(population, max(requested, floor))


def _stratified_sample(
    data: np.ndarray,
    centroids: np.ndarray,
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Pick *size* node ids stratified by initial cluster assignment.

    Strata are the clusters of the public initial centroids; each stratum
    contributes proportionally to its population share (largest-remainder
    rounding), so the sample sees the same mixture of series shapes the full
    population does.
    """
    assigned = blockwise_assign(data, centroids)
    population = data.shape[0]
    clusters = centroids.shape[0]
    counts = np.bincount(assigned, minlength=clusters)
    exact = counts * (size / population)
    quota = np.floor(exact).astype(int)
    remainder = size - int(quota.sum())
    if remainder > 0:
        order = np.argsort(-(exact - quota))
        quota[order[:remainder]] += 1
    picked: list[np.ndarray] = []
    for cluster in range(clusters):
        members = np.nonzero(assigned == cluster)[0]
        take = min(quota[cluster], members.shape[0])
        if take > 0:
            picked.append(rng.choice(members, size=take, replace=False))
    ids = np.concatenate(picked) if picked else np.empty(0, dtype=np.int64)
    # Top up from anywhere if empty strata left the quota unfilled.
    if ids.shape[0] < size:
        remaining = np.setdiff1d(np.arange(population), ids, assume_unique=False)
        extra = rng.choice(remaining, size=size - ids.shape[0], replace=False)
        ids = np.concatenate([ids, extra])
    return np.sort(ids.astype(np.int64))


def _sub_config(config: ChiaroscuroConfig, sample_size: int) -> ChiaroscuroConfig:
    """Configuration of the sample's full-pipeline object-mode sub-run.

    The sample population is deliberately NOT pinned static: the bulk run's
    churn and rejoin rates carry over, so the measured per-node costs see
    the same membership dynamics the extrapolation claims to cover.
    """
    return config.with_overrides(
        runtime={"engine": "object", "crypto_sample_fraction": 1.0},
        simulation={
            "n_participants": sample_size,
            "churn_rate": config.simulation.churn_rate,
            "rejoin_rate": config.simulation.rejoin_rate,
        },
        crypto={"threshold": min(config.crypto.threshold, sample_size)},
        privacy={"noise_shares": min(config.privacy.noise_shares, sample_size)},
    )


def _run_crypto_sample(
    collection: TimeSeriesCollection,
    config: ChiaroscuroConfig,
    sample_ids: np.ndarray,
    normalize: bool,
    max_extra_cycles: int,
) -> dict[str, Any]:
    """Run the real pipeline on the sample, metering per-node costs.

    The sample sub-run is a complete object-mode protocol execution over the
    sampled series.  Because the cycle engine is strictly sequential, taking
    an operation-counter snapshot around each participant's ``next_cycle``
    yields *exact* per-node crypto-operation attributions; per-node traffic
    comes from the network's own per-node counters.
    """
    # Deferred import: runner imports this module back for engine dispatch.
    from .runner import build_run_setup, plan_max_cycles

    sample_size = int(sample_ids.shape[0])
    sub_collection = collection.subset(
        [int(i) for i in sample_ids], name=f"{collection.name}[crypto-sample]"
    )
    sub_config = _sub_config(config, sample_size)
    setup = build_run_setup(sub_collection, sub_config, normalize=normalize)
    participants = setup.make_participants()
    counter = setup.backend.counter
    per_node_ops: dict[str, np.ndarray] = {
        key: np.zeros(sample_size) for key in counter.as_dict()
    }

    def _meter(participant: Any) -> None:
        inner = participant.next_cycle

        def metered(engine: CycleEngine, cycle: int) -> None:
            before = counter.as_dict()
            inner(engine, cycle)
            after = counter.as_dict()
            for key, value in after.items():
                delta = value - before.get(key, 0)
                if delta:
                    per_node_ops[key][participant.node_id] += delta

        participant.next_cycle = metered

    for participant in participants:
        _meter(participant)
    engine = CycleEngine(
        participants,
        seed=sub_config.simulation.seed,
        churn_rate=sub_config.simulation.churn_rate,
        rejoin_rate=sub_config.simulation.rejoin_rate,
        drop_probability=sub_config.gossip.drop_probability,
        corruption_rate=sub_config.network.corruption_rate,
    )
    max_cycles = plan_max_cycles(sub_config, max_extra_cycles)
    engine.run(max_cycles, stop_when=lambda eng: all(p.is_done for p in participants))
    for participant in participants:
        if not participant.is_done:
            participant.online = True
    guard = 0
    while not all(p.is_done for p in participants) and guard < max_cycles:
        engine.run_cycle()
        guard += 1
    if not all(p.is_done for p in participants):
        raise ProtocolError("crypto sample sub-run did not terminate")
    stats = engine.network.per_node_stats()
    return {
        "setup": setup,
        "per_node_ops": per_node_ops,
        "per_node_messages": np.array([s.messages_sent for s in stats], dtype=float),
        "per_node_bytes": np.array([s.bytes_sent for s in stats], dtype=float),
        "totals": {
            "messages_sent": engine.network.total.messages_sent,
            "bytes_sent": engine.network.total.bytes_sent,
            "bytes_modelled": engine.network.total.bytes_modelled,
            "crypto": counter.as_dict(),
        },
        "iterations": max(p.iteration for p in participants),
    }


def _per_node_seconds(
    per_node_ops: dict[str, np.ndarray], profile: CryptoCostProfile
) -> np.ndarray:
    """Per-node *online* crypto seconds implied by per-node operation counts.

    Pool-served operations — pooled encryptions and rerandomizations, which
    draw a precomputed blinder and are a single multiplication on the hot
    path — are charged the amortized pooled cost; the blinder
    exponentiations they consumed are offline work
    (:func:`_per_node_offline_seconds`).
    """
    pooled_cost = (
        profile.pooled_encryption_seconds
        if profile.pooled_encryption_seconds > 0
        else profile.encryption_seconds
    )
    weights = {
        "encryptions": profile.encryption_seconds,
        "pooled_encryptions": pooled_cost,
        "rerandomizations": pooled_cost,
        "additions": profile.addition_seconds,
        "partial_decryptions": profile.partial_decryption_seconds,
        "combinations": profile.combination_seconds,
    }
    seconds = np.zeros(next(iter(per_node_ops.values())).shape[0])
    for key, weight in weights.items():
        if key in per_node_ops:
            seconds += per_node_ops[key] * weight
    return seconds


def _per_node_offline_seconds(
    per_node_ops: dict[str, np.ndarray], profile: CryptoCostProfile
) -> np.ndarray:
    """Per-node *offline* (precomputed blinder) seconds for operation counts."""
    shape = next(iter(per_node_ops.values())).shape[0]
    if profile.pooled_encryption_seconds <= 0:
        return np.zeros(shape)
    served = np.zeros(shape)
    for key in ("pooled_encryptions", "rerandomizations"):
        if key in per_node_ops:
            served = served + per_node_ops[key]
    return served * profile.encryption_seconds


def _workload_extrapolation(
    workload: ProtocolWorkload,
    config: ChiaroscuroConfig,
    population: int,
    profile: CryptoCostProfile | None,
) -> ExtrapolatedCost:
    iterations = workload.iterations
    ciphertext_bytes = (
        profile.ciphertext_bytes
        if profile is not None
        else (config.crypto.key_bits // 8) * (config.crypto.degree + 1)
    )
    totals: dict[str, tuple[float, float, float]] = {}

    def exact(key: str, per_node: float) -> None:
        value = float(per_node) * population
        totals[key] = (value, value, value)

    exact("encryptions", workload.encryptions_per_iteration * iterations)
    exact("homomorphic_additions", workload.additions_per_iteration * iterations)
    exact("partial_decryptions", workload.partial_decryptions_per_iteration * iterations)
    exact("combinations", workload.combinations_per_iteration * iterations)
    exact("messages_sent", workload.messages_per_iteration * iterations)
    exact("bytes_sent", workload.wire_bytes_per_iteration(ciphertext_bytes) * iterations)
    if profile is not None:
        estimate = CostModel(profile).estimate(workload)
        offline = 0.0
        if workload.amortized_encryptions and profile.pooled_encryption_seconds > 0:
            # Each amortized encryption consumed one blinder exponentiation
            # precomputed off the hot path.
            offline = (
                workload.encryptions_per_iteration
                * iterations
                * profile.encryption_seconds
            )
        exact("online_seconds", estimate.total_compute_seconds)
        exact("offline_seconds", offline)
        exact("crypto_seconds", estimate.total_compute_seconds + offline)
    return ExtrapolatedCost(
        population=population,
        sample_size=0,
        method="modelled",
        totals=totals,
    )


def _bulk_noise_free_means(
    data: np.ndarray,
    assigned: np.ndarray,
    reference: np.ndarray,
) -> np.ndarray:
    """Exact per-cluster means of the current assignment (analysis only).

    Accumulated over the canonical block partition (bounded temporaries at
    any population; bitwise-equal to the dense per-cluster means for
    single-block float64 populations).
    """
    means = reference.copy()
    sums, counts = blockwise_cluster_sums(data, assigned, reference.shape[0])
    for cluster in range(reference.shape[0]):
        if counts[cluster] > 0:
            means[cluster] = sums[cluster] / counts[cluster]
    return means


def run_slab_chiaroscuro(
    collection: TimeSeriesCollection,
    config: ChiaroscuroConfig | None = None,
    normalize: bool = True,
    n_tracked_participants: int = 4,
    max_extra_cycles: int = 50,
) -> ChiaroscuroResult:
    """Run Chiaroscuro with the slab population engine (see module docstring)."""
    config = config if config is not None else ChiaroscuroConfig()
    profile = load_reference_profile(config)
    if config.runtime.crypto_sample_fraction >= 1.0:
        return _run_full_measured(
            collection, config, profile,
            normalize=normalize,
            n_tracked_participants=n_tracked_participants,
            max_extra_cycles=max_extra_cycles,
        )
    return _run_sampled(
        collection, config, profile,
        normalize=normalize,
        n_tracked_participants=n_tracked_participants,
        max_extra_cycles=max_extra_cycles,
    )


def _run_full_measured(
    collection: TimeSeriesCollection,
    config: ChiaroscuroConfig,
    profile: CryptoCostProfile | None,
    normalize: bool,
    n_tracked_participants: int,
    max_extra_cycles: int,
) -> ChiaroscuroResult:
    """Sampling fraction 1.0: delegate to the object engine (bit-identical)
    and attach the measured population-cost block."""
    from .runner import run_chiaroscuro

    object_config = config.with_overrides(runtime={"engine": "object"})
    result = run_chiaroscuro(
        collection,
        object_config,
        normalize=normalize,
        n_tracked_participants=n_tracked_participants,
        max_extra_cycles=max_extra_cycles,
    )
    costs = result.costs
    measured = {
        "encryptions": float(costs.encryptions),
        "homomorphic_additions": float(costs.homomorphic_additions),
        "partial_decryptions": float(costs.partial_decryptions),
        "combinations": float(costs.combinations),
        "messages_sent": float(costs.messages_sent),
        "bytes_sent": float(costs.bytes_sent),
    }
    if profile is not None:
        # assemble_result attaches the phase split from the full operation
        # counter (pooled encryptions and rerandomizations included); fall
        # back to the four summary counts when it could not.
        online = costs.online_seconds
        offline = costs.offline_seconds if costs.offline_seconds is not None else 0.0
        if online is None:
            online = profile.seconds_for_counts(
                {
                    "encryptions": costs.encryptions,
                    "additions": costs.homomorphic_additions,
                    "partial_decryptions": costs.partial_decryptions,
                    "combinations": costs.combinations,
                }
            )
            offline = 0.0
        measured["online_seconds"] = float(online)
        measured["offline_seconds"] = float(offline)
        measured["crypto_seconds"] = float(online) + float(offline)
    extrapolated = ExtrapolatedCost(
        population=costs.n_participants,
        sample_size=costs.n_participants,
        method="measured",
        totals={key: (value, value, value) for key, value in measured.items()},
    )
    result.costs = replace(costs, extrapolated=extrapolated.as_dict())
    result.metadata["engine"] = {
        "name": "slab",
        "crypto_sample_fraction": 1.0,
        "slab_shards": config.runtime.slab_shards,
        "slab_dtype": config.runtime.slab_dtype,
        "slab_backing": config.runtime.slab_backing,
        "slab_chunk_rows": config.runtime.slab_chunk_rows,
        "population": costs.n_participants,
        "sample_size": costs.n_participants,
        "cost_profile": profile.as_dict() if profile is not None else None,
    }
    return result


def _run_sampled(
    collection: TimeSeriesCollection,
    config: ChiaroscuroConfig,
    profile: CryptoCostProfile | None,
    normalize: bool,
    n_tracked_participants: int,
    max_extra_cycles: int,
) -> ChiaroscuroResult:
    """Sampling fraction below 1: vectorised bulk path + sampled crypto."""
    from .runner import normalize_collection

    population = len(collection)
    value_bound = config.privacy.value_bound
    if normalize:
        data, transform = normalize_collection(collection, value_bound)
    else:
        data = np.clip(collection.to_matrix(), 0.0, value_bound)
        transform = {"offset": 0.0, "scale": 1.0, "value_bound": value_bound}
    n, series_length = data.shape
    k = config.kmeans.n_clusters

    registry = RngRegistry(config.simulation.seed)
    churn_rng = registry.stream("slab.churn")
    pairing_rng = registry.stream("slab.pairing")
    noise_rng = registry.stream("slab.noise")
    sampling_rng = registry.stream("slab.sampling")

    centroids = public_initial_centroids(
        k, series_length, value_low=0.0, value_high=value_bound,
        seed=config.simulation.seed,
    )
    initial_centroids = centroids.copy()
    termination = TerminationCriteria(
        convergence_threshold=config.kmeans.convergence_threshold,
        max_iterations=config.kmeans.max_iterations,
        track_quality=config.kmeans.track_quality,
        quality_patience=config.kmeans.quality_patience,
    )
    strategy = make_budget_strategy(
        config.privacy.budget_strategy,
        config.privacy.epsilon,
        config.kmeans.max_iterations,
        geometric_ratio=config.privacy.geometric_ratio,
    )
    accountant = PrivacyAccountant(config.privacy.epsilon)
    sensitivity = SensitivityModel(
        series_length=series_length,
        value_bound=config.privacy.value_bound,
        count_bound=config.privacy.count_bound,
    )
    n_noise = min(config.privacy.noise_shares, n)
    contributors = np.sort(
        noise_rng.choice(n, size=n_noise, replace=False).astype(np.int64)
    )
    tracked_ids = sorted(
        int(i)
        for i in sampling_rng.choice(
            n, size=min(n_tracked_participants, n), replace=False
        )
    )

    width = k * (series_length + 1)
    coordinator = ShardCoordinator(
        n,
        width,
        shards=config.runtime.slab_shards,
        dtype=config.runtime.slab_dtype,
        backing=config.runtime.slab_backing,
        chunk_rows=config.runtime.slab_chunk_rows,
        data=data,
    )
    slabs = PopulationSlabs.allocate(
        data,
        k,
        estimates=coordinator.estimates,
        online=coordinator.online,
        assigned=coordinator.assigned,
    )
    # Modelled wire payload of one gossip message: the protocol ships float64
    # estimate vectors regardless of the engine-internal slab dtype.
    row_bytes = width * 8
    drop_probability = config.gossip.drop_probability
    corruption_rate = config.network.corruption_rate
    faults_enabled = drop_probability > 0.0 or corruption_rate > 0.0
    loss_rng = registry.stream("slab.loss")
    corruption_rng = registry.stream("slab.corruption")

    log = ExecutionLog(
        metadata={
            "dataset": collection.name,
            "n_participants": n,
            "series_length": series_length,
            "config": config.describe(),
            "normalization": transform,
            "tracked_participants": tracked_ids,
            "engine": "slab",
        }
    )
    min_count = 1.0 / (2.0 * max(1, n))
    progress: float | None = None
    stop_reason = "max_iterations"
    iteration = 0
    bulk_messages = 0
    bulk_bytes = 0
    bulk_dropped = 0
    bulk_corrupted = 0
    timer = PhaseTimer()
    wall_begin = time.perf_counter()
    try:
        while True:
            timer.start_iteration()
            with timer.phase("analysis"):
                epsilon = strategy.epsilon_for_iteration(
                    iteration, accountant.remaining_epsilon, progress
                )
                budget_stop = epsilon <= 0.0 or not accountant.can_spend(epsilon)
            if budget_stop:
                stop_reason = "budget_exhausted"
                break
            iteration += 1
            accountant.spend(epsilon, label=f"iteration-{iteration}")
            with timer.phase("assignment"):
                previous_assigned = (
                    slabs.assigned.copy() if iteration > 1 else None
                )
                coordinator.assign(centroids)
                # Reference-free convergence signal: the fraction of nodes
                # whose cluster label survived from the previous iteration.
                # It is a byproduct of the assignment pass (one vector
                # compare over the slab), and unlike displacement it reads
                # directly in label space — a flat 1.0 tail is the slab
                # run's convergence curve.
                label_agreement = (
                    float(np.mean(slabs.assigned == previous_assigned))
                    if previous_assigned is not None else 1.0
                )
            with timer.phase("scatter"):
                coordinator.scatter()
            with timer.phase("noise"):
                spec = NoiseShareSpec(
                    scale=sensitivity.laplace_scale(epsilon),
                    n_shares=n_noise,
                    vector_length=series_length + 1,
                )
                for node in contributors:
                    for cluster in range(k):
                        start = cluster * (series_length + 1)
                        slabs.estimates[node, start:start + series_length + 1] += (
                            draw_noise_share(spec, noise_rng)
                        )
            messages_before = bulk_messages
            bytes_before = bulk_bytes
            dropped_before = bulk_dropped
            corrupted_before = bulk_corrupted
            for _cycle in range(config.gossip.cycles_per_aggregation):
                with timer.phase("churn"):
                    slab_churn_step(
                        slabs.online,
                        config.simulation.churn_rate,
                        config.simulation.rejoin_rate,
                        churn_rng,
                        rng_draws=slabs.rng_draws,
                    )
                for _exchange in range(config.gossip.exchanges_per_cycle):
                    with timer.phase("pairing"):
                        pairs = pair_online(
                            slabs.online, pairing_rng, rng_draws=slabs.rng_draws
                        )
                        slabs.last_pairing = pairs
                        plan = (
                            plan_pair_faults(
                                pairs,
                                frame_bits=row_bytes * 8,
                                drop_probability=drop_probability,
                                corruption_rate=corruption_rate,
                                loss_rng=loss_rng,
                                corruption_rng=corruption_rng,
                            )
                            if faults_enabled
                            else None
                        )
                    with timer.phase("averaging"):
                        if plan is None:
                            coordinator.average_pairs(pairs)
                            bulk_messages += 2 * int(pairs.shape[0])
                            bulk_bytes += 2 * int(pairs.shape[0]) * row_bytes
                        else:
                            coordinator.average_pairs(plan.full_pairs)
                            coordinator.half_average_pairs(plan.half_pairs)
                            bulk_messages += plan.messages_sent
                            bulk_bytes += plan.messages_sent * row_bytes
                            bulk_dropped += plan.dropped_frames
                            bulk_corrupted += plan.corrupted_frames
            with timer.phase("means"):
                mean_vector, online_count = coordinator.online_mean()
                if online_count == 0:
                    raise ProtocolError("every node went offline during gossip")
                values = mean_vector.reshape(k, series_length + 1)
                sums = values[:, :series_length]
                counts = values[:, series_length]
                perturbed = centroids.copy()
                populated = counts > min_count
                perturbed[populated] = sums[populated] / counts[populated][:, None]
                perturbed = np.clip(perturbed, 0.0, value_bound)
                donor = int(np.argmax(counts))
                for cluster in range(k):
                    if cluster != donor and counts[cluster] <= min_count:
                        perturbed[cluster] = reseed_centroid(
                            perturbed[donor], value_bound, iteration, cluster,
                            seed=config.simulation.seed,
                        )
                perturbed = smooth_centroids(perturbed, config.smoothing)
                displacement = centroid_displacement(centroids, perturbed)
            with timer.phase("analysis"):
                noise_free_means = _bulk_noise_free_means(
                    data, slabs.assigned, perturbed
                )
            iteration_costs = {
                "messages_sent": float(bulk_messages - messages_before),
                "bytes_sent": float(bulk_bytes - bytes_before),
                "label_agreement": label_agreement,
            }
            if faults_enabled:
                iteration_costs["dropped_frames"] = float(
                    bulk_dropped - dropped_before
                )
                iteration_costs["corrupted_frames"] = float(
                    bulk_corrupted - corrupted_before
                )
            iteration_costs.update(timer.iteration_costs())
            log.append(
                IterationRecord(
                    iteration=iteration,
                    epsilon_spent=epsilon,
                    centroids_before=centroids.copy(),
                    perturbed_means=perturbed.copy(),
                    noise_free_means=noise_free_means,
                    displacement=displacement,
                    tracked_assignments={
                        node_id: int(slabs.assigned[node_id])
                        for node_id in tracked_ids
                    },
                    costs=iteration_costs,
                )
            )
            centroids = perturbed
            progress = float(
                np.clip(1.0 - displacement / max(value_bound, 1e-12), 0.0, 1.0)
            )
            stop, reason = termination.should_stop(iteration, displacement)
            if stop:
                stop_reason = reason
                break
    finally:
        # Drop the slab views into the coordinator's shared mappings before
        # it unlinks them (everything after the loop recomputes from data).
        slabs.estimates = np.empty((0, 0), dtype=np.float64)
        slabs.online = np.empty(0, dtype=bool)
        slabs.assigned = np.empty(0, dtype=np.int32)
        coordinator.close()

    # ---------------------------------------------------------------- sample
    with timer.phase("sample"):
        sample_size = _sample_size(config, population)
        sample_ids = np.empty(0, dtype=np.int64)
        sample: dict[str, Any] | None = None
        if sample_size > 0:
            sample_ids = _stratified_sample(
                data, initial_centroids, sample_size, sampling_rng
            )
            sample = _run_crypto_sample(
                collection, config, sample_ids, normalize, max_extra_cycles
            )
        iterations = max(1, iteration)
        if sample is not None:
            factor = iterations / max(1, sample["iterations"])
            ops = sample["per_node_ops"]
            metrics: dict[str, np.ndarray] = {
                "encryptions": ops.get("encryptions", np.zeros(sample_size)) * factor,
                "homomorphic_additions": (
                    ops.get("additions", np.zeros(sample_size)) * factor
                ),
                "partial_decryptions": (
                    ops.get("partial_decryptions", np.zeros(sample_size)) * factor
                ),
                "combinations": ops.get("combinations", np.zeros(sample_size)) * factor,
                "messages_sent": sample["per_node_messages"] * factor,
                "bytes_sent": sample["per_node_bytes"] * factor,
            }
            if profile is not None:
                online = _per_node_seconds(ops, profile) * factor
                offline = _per_node_offline_seconds(ops, profile) * factor
                metrics["online_seconds"] = online
                metrics["offline_seconds"] = offline
                metrics["crypto_seconds"] = online + offline
            extrapolated = bootstrap_extrapolate(
                metrics,
                population=population,
                n_boot=200,
                confidence=0.95,
                seed=config.simulation.seed,
            )
        else:
            workload = ProtocolWorkload(
                n_clusters=k,
                series_length=series_length,
                iterations=iterations,
                gossip_cycles=config.gossip.cycles_per_aggregation,
                exchanges_per_cycle=config.gossip.exchanges_per_cycle,
                threshold=config.crypto.threshold,
            )
            extrapolated = _workload_extrapolation(
                workload, config, population, profile
            )
    slab_wall_seconds = time.perf_counter() - wall_begin

    # ---------------------------------------------------------------- result
    assignments = blockwise_assign(data, centroids)
    inertia = blockwise_inertia(data, centroids, assignments)
    epsilon_spent = accountant.spent_epsilon
    guarantee = guarantee_for_run(
        epsilon=max(epsilon_spent, 1e-12),
        cycles=config.gossip.cycles_per_aggregation,
        n_participants=population,
    )
    sample_totals = (
        sample["totals"]
        if sample is not None
        else {
            "messages_sent": 0, "bytes_sent": 0, "bytes_modelled": 0,
            "crypto": {},
        }
    )
    crypto = sample_totals["crypto"]
    costs = CostSummary(
        n_participants=population,
        n_iterations=iterations,
        messages_sent=int(sample_totals["messages_sent"]),
        bytes_sent=int(sample_totals["bytes_sent"]),
        encryptions=int(crypto.get("encryptions", 0)),
        homomorphic_additions=int(crypto.get("additions", 0)),
        partial_decryptions=int(crypto.get("partial_decryptions", 0)),
        combinations=int(crypto.get("combinations", 0)),
        bytes_sent_modelled=int(sample_totals["bytes_modelled"]),
        wire=(
            sample["setup"].wire_info()["mode"] if sample is not None else "off"
        ),
        iteration_costs=tuple(
            {str(key): float(value) for key, value in record.costs.items()}
            for record in log
        ),
        extrapolated=extrapolated.as_dict(),
        phase_seconds={
            name: float(seconds) for name, seconds in timer.totals.items()
        },
    )
    per_participant_profiles = {node_id: centroids.copy() for node_id in tracked_ids}
    metadata: dict[str, Any] = {
        "normalization": transform,
        "tracked_participants": tracked_ids,
        "dataset": collection.name,
        "packing": (
            sample["setup"].packing_info()
            if sample is not None
            else {"enabled": False, "slots": 1, "slot_bits": 0}
        ),
        "fastmath": (
            sample["setup"].fastmath_info()
            if sample is not None
            else {"mode": "off", "pooled": False}
        ),
        "wire": (
            sample["setup"].wire_info()
            if sample is not None
            else {"mode": "off", "corruption_rate": 0.0}
        ),
        "engine": {
            "name": "slab",
            "crypto_sample_fraction": config.runtime.crypto_sample_fraction,
            "slab_shards": config.runtime.slab_shards,
            "slab_dtype": config.runtime.slab_dtype,
            "slab_backing": config.runtime.slab_backing,
            "slab_chunk_rows": config.runtime.slab_chunk_rows,
            "slab_wall_seconds": float(slab_wall_seconds),
            "population": population,
            "sample_size": int(sample_ids.shape[0]),
            "sample_iterations": sample["iterations"] if sample is not None else 0,
            "bulk_messages_modelled": bulk_messages,
            "bulk_bytes_modelled": bulk_bytes,
            "bulk_dropped_frames": bulk_dropped,
            "bulk_corrupted_frames": bulk_corrupted,
            "cost_profile": profile.as_dict() if profile is not None else None,
        },
    }
    return ChiaroscuroResult(
        profiles=centroids,
        assignments=assignments,
        per_participant_profiles=per_participant_profiles,
        inertia=inertia,
        n_iterations=iterations,
        converged=stop_reason in ("converged", "synchronized"),
        stop_reasons={stop_reason: population},
        epsilon_spent=epsilon_spent,
        guarantee=guarantee,
        costs=costs,
        log=log,
        metadata=metadata,
    )
