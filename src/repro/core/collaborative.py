"""Collaborative (threshold) decryption inside the simulation.

"The collaborative decryption is performed by getting from a sufficient
number of distinct participants their partial decryptions" (paper, Section
II.B).  In the simulation, key shares are held by the first ``n_shares``
participants (a decryption committee); a participant wanting to decrypt its
perturbed encrypted means sends each committee member the ciphertexts and
receives a partial decryption back, then combines locally.  Message and byte
counts are charged to the network so that the cost analysis reflects the
decryption traffic.

With the wire format enabled every round-trip moves serialized byte frames
(:class:`~repro.gossip.messages.DecryptRequest` /
:class:`~repro.gossip.messages.DecryptResponse`): helpers partially decrypt
the ciphertexts they *deserialize from the received bytes*, responses are
decoded the same way, and the network accounts measured frame lengths.  A
frame corrupted in transit fails its checksum, that helper contributes no
partial decryptions, and when fewer than ``threshold`` distinct shares
survive the round the usual :class:`~repro.exceptions.ThresholdError`
surfaces — the caller retries at the next cycle, exactly as it does when
committee members are offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..crypto.backends import CipherBackend, PartialVectorDecryption
from ..crypto.wire import wire_ciphertext_bytes
from ..exceptions import ThresholdError, WireFormatError
from ..gossip.encrypted_sum import EncryptedEstimate, estimate_payload_bytes
from ..simulation.engine import CycleEngine


@dataclass(frozen=True)
class DecryptionOutcome:
    """Result of one collaborative decryption request."""

    values: np.ndarray
    helpers: tuple[int, ...]
    messages: int
    bytes_transferred: int


@dataclass(frozen=True)
class BatchDecryptionOutcome:
    """Result of a batched collaborative decryption of several estimates."""

    values: list[np.ndarray]
    helpers: tuple[int, ...]
    messages: int
    bytes_transferred: int


def share_holder_ids(n_shares: int) -> list[int]:
    """Node ids of the decryption committee (share *i+1* is held by node *i*)."""
    return list(range(n_shares))


def share_index_of(node_id: int, n_shares: int) -> int | None:
    """Key-share index (1-based) held by *node_id*, or None."""
    if 0 <= node_id < n_shares:
        return node_id + 1
    return None


def build_decrypt_request(backend: CipherBackend,
                          estimates: Sequence[EncryptedEstimate]) -> bytes:
    """Serialize one committee decryption request frame.

    The single frame-building site shared by the cycle engine's committee
    round and the live runner's transport round, so the two execution modes
    can never diverge in what they put on the wire.
    """
    from ..gossip.messages import DecryptRequest

    width = wire_ciphertext_bytes(backend)
    return DecryptRequest(
        estimates=tuple(estimates), ciphertext_bytes=width
    ).serialize()


def decode_decrypt_response(frame: bytes, expected_partials: int):
    """Decode a helper's response frame; ``None`` means "treat as a loss".

    A frame that fails its checksum, decodes to a different message type,
    or carries the wrong number of partial decryptions simply removes that
    helper's contribution from the round — shared loss semantics of both
    execution modes.
    """
    from ..gossip.messages import DecryptResponse, deserialize

    try:
        response = deserialize(frame)
    except WireFormatError:
        return None
    if not isinstance(response, DecryptResponse):
        return None
    if len(response.partials) != expected_partials:
        return None
    return response.partials


def build_decrypt_response(backend: CipherBackend, partials: tuple) -> bytes:
    """Serialize one helper's partial-decryption response frame."""
    from ..gossip.messages import DecryptResponse

    width = wire_ciphertext_bytes(backend)
    return DecryptResponse(partials=partials, ciphertext_bytes=width).serialize()


def finalize_decryption(
    backend: CipherBackend,
    per_estimate: Sequence[Sequence[PartialVectorDecryption]],
    estimates: Sequence[EncryptedEstimate],
) -> list[np.ndarray]:
    """Combine gathered partials and undo each estimate's public exponent.

    Raises :class:`ThresholdError` (from the backend) when a round left
    fewer than ``threshold`` distinct usable partials for some estimate.
    """
    return [
        backend.combine_vector(partials) / float(1 << estimate.halvings)
        for partials, estimate in zip(per_estimate, estimates)
    ]


def _online_helpers(engine: CycleEngine, backend: CipherBackend) -> tuple[int, ...]:
    """The decryption helpers for this cycle, or :class:`ThresholdError`."""
    online = set(engine.online_ids())
    committee = [node_id for node_id in share_holder_ids(backend.n_shares) if node_id in online]
    if len(committee) < backend.threshold:
        raise ThresholdError(
            f"only {len(committee)} of the {backend.threshold} required decryption "
            "helpers are online"
        )
    return tuple(committee[: backend.threshold])


def _committee_round(
    engine: CycleEngine,
    requester_id: int,
    backend: CipherBackend,
    estimates: Sequence[EncryptedEstimate],
    wire: bool,
) -> tuple[list[list[PartialVectorDecryption]], tuple[int, ...], int, int]:
    """One request/response round with every online helper.

    Returns the per-estimate partial decryptions gathered, the helper ids,
    and the message/byte counts charged to the network.  With *wire* on,
    helpers operate on the ciphertexts decoded from the received frames; an
    undecodable (corrupted) frame simply removes that helper's contribution
    from the round.
    """
    helpers = _online_helpers(engine, backend)
    modelled = sum(estimate_payload_bytes(backend, estimate) for estimate in estimates)
    per_estimate_partials: list[list[PartialVectorDecryption]] = [[] for _ in estimates]
    messages = 0
    bytes_transferred = 0
    request_frame = b""
    if wire:
        request_frame = build_decrypt_request(backend, estimates)
    for helper_id in helpers:
        share_index = share_index_of(helper_id, backend.n_shares)
        if share_index is None:  # pragma: no cover - committee construction guarantees this
            raise ThresholdError(f"node {helper_id} holds no key share")
        if wire:
            from ..gossip.messages import deserialize

            received = engine.transmit(
                requester_id, helper_id, "decrypt-request", request_frame,
                modelled_bytes=modelled,
            )
            messages += 1
            bytes_transferred += len(request_frame)
            if received is None:
                # The committee round-trip is atomic in the cycle model
                # (drops are modelled at the gossip layer); the frame is
                # still parsed so the helper works from decoded bytes.
                received = request_frame
            try:
                request = deserialize(received)
            except WireFormatError:
                continue  # corrupted request: this helper cannot serve
            helper_partials = tuple(
                backend.partial_decrypt_vector(share_index, estimate.vector)
                for estimate in request.estimates
            )
            response_frame = build_decrypt_response(backend, helper_partials)
            returned = engine.transmit(
                helper_id, requester_id, "decrypt-response", response_frame,
                modelled_bytes=modelled,
            )
            messages += 1
            bytes_transferred += len(response_frame)
            if returned is None:
                returned = response_frame
            partials = decode_decrypt_response(returned, len(estimates))
            if partials is None:
                continue  # corrupted response: discard this helper's shares
            for position, partial in enumerate(partials):
                per_estimate_partials[position].append(partial)
        else:
            engine.send(requester_id, helper_id, "decrypt-request", None,
                        size_bytes=modelled)
            messages += 1
            bytes_transferred += modelled
            for position, estimate in enumerate(estimates):
                per_estimate_partials[position].append(
                    backend.partial_decrypt_vector(share_index, estimate.vector)
                )
            engine.send(helper_id, requester_id, "decrypt-response", None,
                        size_bytes=modelled)
            messages += 1
            bytes_transferred += modelled
    return per_estimate_partials, helpers, messages, bytes_transferred


def collaborative_decrypt(
    engine: CycleEngine,
    requester_id: int,
    backend: CipherBackend,
    estimate: EncryptedEstimate,
    wire: bool = False,
) -> DecryptionOutcome:
    """Decrypt *estimate* by gathering partial decryptions from online helpers.

    Raises :class:`ThresholdError` when fewer than ``backend.threshold``
    committee members are currently online — or, with the wire format on,
    when corruption left fewer than ``threshold`` usable partial
    decryptions (the caller typically retries at the next cycle).
    """
    per_estimate, helpers, messages, bytes_transferred = _committee_round(
        engine, requester_id, backend, [estimate], wire
    )
    values = finalize_decryption(backend, per_estimate, [estimate])[0]
    return DecryptionOutcome(
        values=values,
        helpers=tuple(helpers),
        messages=messages,
        bytes_transferred=bytes_transferred,
    )


def collaborative_decrypt_many(
    engine: CycleEngine,
    requester_id: int,
    backend: CipherBackend,
    estimates: Sequence[EncryptedEstimate],
    wire: bool = False,
) -> BatchDecryptionOutcome:
    """Decrypt several estimates in one committee round-trip when possible.

    With a packed backend the request to each helper carries *all* the
    estimates' ciphertexts at once (2·threshold messages total instead of
    2·threshold per estimate) — the batched half of the packed/batched cipher
    layer.  Without packing it falls back to one
    :func:`collaborative_decrypt` call per estimate, reproducing the
    historical message pattern byte for byte.
    """
    if not backend.is_packed:
        values: list[np.ndarray] = []
        helpers: tuple[int, ...] = ()
        messages = 0
        bytes_transferred = 0
        for estimate in estimates:
            outcome = collaborative_decrypt(engine, requester_id, backend, estimate,
                                            wire=wire)
            values.append(outcome.values)
            helpers = outcome.helpers
            messages += outcome.messages
            bytes_transferred += outcome.bytes_transferred
        return BatchDecryptionOutcome(
            values=values, helpers=helpers, messages=messages,
            bytes_transferred=bytes_transferred,
        )

    per_estimate, helpers, messages, bytes_transferred = _committee_round(
        engine, requester_id, backend, estimates, wire
    )
    values = finalize_decryption(backend, per_estimate, estimates)
    return BatchDecryptionOutcome(
        values=values, helpers=helpers, messages=messages,
        bytes_transferred=bytes_transferred,
    )
