"""Result objects of a Chiaroscuro run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..exceptions import AnalysisError
from ..privacy.probabilistic import ProbabilisticGuarantee
from ..simulation.network import ByteAccounting
from .execution_log import ExecutionLog


@dataclass(frozen=True)
class CostSummary:
    """Aggregate cost measures of a run (claim C3 of the paper).

    All figures are totals over the run unless stated otherwise.

    ``bytes_sent`` is what the network accounted: *measured* serialized
    frame lengths when the run used the wire format (``wire="auto"``), the
    modelled size formula otherwise.  ``bytes_sent_modelled`` always holds
    the modelled figure, so wire runs report both and the difference is the
    exact framing overhead.

    ``iteration_costs`` holds the per-iteration cost deltas recorded in the
    execution log (one mapping per protocol iteration, in order): both the
    cycle engine and the live runner record at least ``messages_sent`` and
    ``bytes_sent`` per iteration; the cycle engine additionally records the
    crypto-operation deltas.  Attribution: traffic is charged to the
    iteration the sending participant was working on.

    ``extrapolated`` is only set by the slab engine's sampled-crypto path:
    the :meth:`~repro.analysis.costs.ExtrapolatedCost.as_dict` view of the
    population-total crypto cost with bootstrap confidence intervals.  In
    that case the plain counter fields above hold what was actually
    *executed* (the sample), while ``extrapolated`` holds the inferred
    population totals.

    ``envelope`` is only set by concurrent live runs
    (``runtime.stepping="concurrent"`` with ``runtime.envelope="auto"``):
    the :func:`~repro.analysis.envelope.nondeterminism_envelope` view of
    this run's divergence from the deterministic cycle-mode reference —
    profile distance, assignment churn and byte spread — quantifying the
    speed/determinism trade-off the concurrent scheduler makes.

    ``offline_seconds`` / ``online_seconds`` split the run's modelled crypto
    compute between the input-independent precomputation phase (blinder
    exponentiations filling the pools) and the hot path (pooled multiplies,
    homomorphic additions, decryptions), priced from the committed
    ``BENCH_crypto.json`` profile; the two always sum to the total modelled
    seconds.  ``phase_ops`` carries the per-phase operation counts behind
    the split.  All three stay ``None`` (keys absent from :meth:`as_dict`)
    when no benchmark profile was available.

    ``phase_seconds`` is only set by the slab engine's sampled path: the
    *measured* wall-clock totals of the bulk loop's phases (assignment,
    scatter, noise, churn, pairing, averaging, means, analysis, sample),
    which sum to the engine's measured wall-clock.  The per-iteration
    series lives in ``iteration_costs`` under ``phase_seconds.<phase>``
    keys.
    """

    n_participants: int
    n_iterations: int
    messages_sent: int
    bytes_sent: int
    encryptions: int
    homomorphic_additions: int
    partial_decryptions: int
    combinations: int
    bytes_sent_modelled: int = 0
    wire: str = "off"
    iteration_costs: tuple[Mapping[str, float], ...] = ()
    extrapolated: Mapping[str, Any] | None = None
    envelope: Mapping[str, Any] | None = None
    offline_seconds: float | None = None
    online_seconds: float | None = None
    phase_ops: Mapping[str, Any] | None = None
    phase_seconds: Mapping[str, float] | None = None

    @property
    def messages_per_participant(self) -> float:
        """Average messages sent per participant over the whole run."""
        return self.messages_sent / max(1, self.n_participants)

    @property
    def bytes_per_participant(self) -> float:
        """Average bytes sent per participant over the whole run."""
        return self.bytes_sent / max(1, self.n_participants)

    @property
    def encryptions_per_participant(self) -> float:
        """Average encryptions per participant over the whole run."""
        return self.encryptions / max(1, self.n_participants)

    @property
    def byte_accounting(self) -> ByteAccounting:
        """Measured-vs-modelled view of this run's bytes.

        See :class:`~repro.simulation.network.ByteAccounting`; with the
        wire format off both figures coincide.
        """
        return ByteAccounting(
            bytes_modelled=float(self.bytes_sent_modelled),
            bytes_measured=float(self.bytes_sent),
        )

    @property
    def wire_overhead_fraction(self) -> float:
        """Measured-over-modelled byte overhead of the wire format.

        Zero when the run did not measure frames (``wire="off"``) or when
        no bytes were sent.
        """
        return self.byte_accounting.overhead_fraction

    def bytes_per_iteration(self) -> list[float]:
        """Per-iteration byte deltas (empty when no per-iteration costs)."""
        return [float(costs.get("bytes_sent", 0.0)) for costs in self.iteration_costs]

    def messages_per_iteration(self) -> list[float]:
        """Per-iteration message deltas (empty when no per-iteration costs)."""
        return [float(costs.get("messages_sent", 0.0)) for costs in self.iteration_costs]

    def as_dict(self) -> dict[str, Any]:
        """Plain dictionary view (totals, per-participant averages and
        per-iteration delta series)."""
        view: dict[str, Any] = {
            "n_participants": float(self.n_participants),
            "n_iterations": float(self.n_iterations),
            "messages_sent": float(self.messages_sent),
            "bytes_sent": float(self.bytes_sent),
            "encryptions": float(self.encryptions),
            "homomorphic_additions": float(self.homomorphic_additions),
            "partial_decryptions": float(self.partial_decryptions),
            "combinations": float(self.combinations),
            "messages_per_participant": self.messages_per_participant,
            "bytes_per_participant": self.bytes_per_participant,
            "encryptions_per_participant": self.encryptions_per_participant,
            "bytes_sent_modelled": float(self.bytes_sent_modelled),
            "wire_overhead_fraction": self.wire_overhead_fraction,
            "iteration_bytes_sent": self.bytes_per_iteration(),
            "iteration_messages_sent": self.messages_per_iteration(),
        }
        # Only slab-engine runs carry extrapolated totals, and only
        # concurrent live runs carry an envelope; keeping the keys absent
        # otherwise leaves historical store rows byte-identical.
        if self.extrapolated is not None:
            view["extrapolated"] = dict(self.extrapolated)
        if self.envelope is not None:
            view["envelope"] = dict(self.envelope)
        # The phase split needs the committed benchmark profile; keys are
        # absent (not zero) when none was found, for the same reason.
        if self.offline_seconds is not None:
            view["offline_seconds"] = float(self.offline_seconds)
        if self.online_seconds is not None:
            view["online_seconds"] = float(self.online_seconds)
        if self.phase_ops is not None:
            view["phase_ops"] = {
                phase: {key: float(value) for key, value in ops.items()}
                for phase, ops in self.phase_ops.items()
            }
        # Per-phase wall-clock of the slab engine's bulk loop (absent for
        # the object engine and for full-measured slab runs).
        if self.phase_seconds is not None:
            view["phase_seconds"] = {
                phase: float(seconds)
                for phase, seconds in self.phase_seconds.items()
            }
        return view


@dataclass
class ChiaroscuroResult:
    """Outcome of a complete Chiaroscuro run.

    Attributes
    ----------
    profiles:
        The consensus final centroids (``(k, series_length)``): the average of
        the participants' final profiles, which are all within gossip error of
        each other.
    assignments:
        Final cluster assignment of every participant (index into
        ``profiles``).
    per_participant_profiles:
        Final profiles as seen by each participant (participant id -> array);
        the demo GUI shows that these views agree.
    inertia:
        Intra-cluster inertia of ``profiles`` on the participants' data.
    n_iterations:
        Number of protocol iterations executed (max over participants).
    converged:
        Whether any participant stopped because of the displacement criterion.
    stop_reasons:
        Participant stop reasons, as a histogram.
    epsilon_spent:
        Privacy budget consumed (max over participants — they follow the same
        schedule, so this is also the per-participant spend).
    guarantee:
        Probabilistic differential-privacy guarantee achieved by the run.
    costs:
        Aggregate cost summary.
    log:
        The per-iteration execution log.
    """

    profiles: np.ndarray
    assignments: np.ndarray
    per_participant_profiles: dict[int, np.ndarray]
    inertia: float
    n_iterations: int
    converged: bool
    stop_reasons: dict[str, int]
    epsilon_spent: float
    guarantee: ProbabilisticGuarantee
    costs: CostSummary
    log: ExecutionLog
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def n_clusters(self) -> int:
        """Number of final profiles."""
        return self.profiles.shape[0]

    def profile(self, cluster: int) -> np.ndarray:
        """The final profile (centroid) of one cluster."""
        if not 0 <= cluster < self.n_clusters:
            raise AnalysisError(f"cluster {cluster} outside [0, {self.n_clusters})")
        return self.profiles[cluster]

    def cluster_sizes(self) -> dict[int, int]:
        """Number of participants assigned to each profile."""
        unique, counts = np.unique(self.assignments, return_counts=True)
        sizes = {int(cluster): 0 for cluster in range(self.n_clusters)}
        sizes.update({int(cluster): int(count) for cluster, count in zip(unique, counts)})
        return sizes

    def summary(self) -> dict[str, Any]:
        """Compact run summary used by reports and examples."""
        return {
            "n_clusters": self.n_clusters,
            "n_participants": self.costs.n_participants,
            "n_iterations": self.n_iterations,
            "converged": self.converged,
            "inertia": self.inertia,
            "epsilon_spent": self.epsilon_spent,
            "effective_epsilon": self.guarantee.effective_epsilon,
            "delta": self.guarantee.delta,
            "messages_per_participant": self.costs.messages_per_participant,
            "bytes_per_participant": self.costs.bytes_per_participant,
            "stop_reasons": dict(self.stop_reasons),
        }
