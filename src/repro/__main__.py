"""``python -m repro`` entry point delegating to :mod:`repro.cli`."""

import sys

from .cli import main

sys.exit(main())
