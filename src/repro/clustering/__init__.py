"""Clustering substrate: k-means, quality metrics and smoothing heuristics."""

from .kmeans import (
    KMeansResult,
    assign_to_centroids,
    best_of_kmeans,
    centroid_displacement,
    compute_inertia,
    compute_means,
    initialize_centroids,
    kmeans,
    public_initial_centroids,
)
from .metrics import (
    adjusted_rand_index,
    centroid_matching_error,
    contingency_table,
    match_centroids,
    quality_report,
    relative_inertia,
    silhouette_score,
)
from .smoothing import noise_reduction_ratio, smooth_centroids, smooth_series

__all__ = [
    "KMeansResult",
    "kmeans",
    "best_of_kmeans",
    "initialize_centroids",
    "public_initial_centroids",
    "assign_to_centroids",
    "compute_means",
    "centroid_displacement",
    "compute_inertia",
    "adjusted_rand_index",
    "centroid_matching_error",
    "contingency_table",
    "match_centroids",
    "quality_report",
    "relative_inertia",
    "silhouette_score",
    "smooth_centroids",
    "smooth_series",
    "noise_reduction_ratio",
]
