"""Centroid-smoothing heuristics (quality-enhancing heuristic #2).

Chiaroscuro improves "the quality of each centroid by smoothing the perturbed
means" (Section II.B).  The rationale: centroids of personal time-series are
smooth (daily load curves, tumor-growth trajectories) while the Laplace
perturbation is independent per point — white noise spread across all
frequencies — so a mild low-pass operation removes much of the noise while
barely distorting the underlying profile.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_float_array
from ..config import SmoothingConfig
from ..exceptions import ValidationError
from ..timeseries.preprocessing import exponential_smoothing, lowpass_filter, moving_average


def smooth_series(values: np.ndarray, config: SmoothingConfig) -> np.ndarray:
    """Apply the configured smoothing heuristic to one series."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValidationError(f"smooth_series expects a 1-D array, got shape {values.shape}")
    if config.method == "none":
        return values.copy()
    if config.method == "moving_average":
        return moving_average(values, config.window)
    if config.method == "lowpass":
        return lowpass_filter(values, config.lowpass_cutoff)
    if config.method == "exponential":
        return exponential_smoothing(values, config.alpha)
    raise ValidationError(f"unknown smoothing method {config.method!r}")


def smooth_centroids(centroids: np.ndarray, config: SmoothingConfig) -> np.ndarray:
    """Apply the smoothing heuristic independently to every centroid."""
    centroids = as_2d_float_array(centroids, "centroids")
    if config.method == "none":
        return centroids.copy()
    return np.vstack([smooth_series(row, config) for row in centroids])


def noise_reduction_ratio(
    clean: np.ndarray, noisy: np.ndarray, smoothed: np.ndarray
) -> float:
    """How much of the noise the smoothing removed.

    Defined as ``1 - error(smoothed) / error(noisy)`` where the error is the
    L2 distance to the clean (noise-free) centroids; 0 means no improvement,
    1 means the noise was removed entirely, negative values mean smoothing
    hurt.
    """
    clean = as_2d_float_array(clean, "clean")
    noisy = as_2d_float_array(noisy, "noisy")
    smoothed = as_2d_float_array(smoothed, "smoothed")
    if not clean.shape == noisy.shape == smoothed.shape:
        raise ValidationError("clean, noisy and smoothed centroid sets must share a shape")
    noisy_error = float(np.linalg.norm(noisy - clean))
    smoothed_error = float(np.linalg.norm(smoothed - clean))
    if noisy_error == 0.0:
        return 0.0
    return 1.0 - smoothed_error / noisy_error
