"""Centralised Lloyd k-means on time-series matrices.

This is the algorithm Chiaroscuro distributes (paper, Section II.A), kept
centralised here for three purposes: the quality reference of claim C2
("similar to the quality of centralized clustering results"), the
initialisation of unit tests with known optima, and the building block of the
centralised differentially-private baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_2d_float_array, check_non_negative_float, check_positive_int
from ..exceptions import ConvergenceError, ValidationError
from ..timeseries.distance import pairwise_distances


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a k-means run.

    Attributes
    ----------
    centroids:
        ``(k, series_length)`` matrix of final centroids.
    assignments:
        Cluster index of every input series.
    inertia:
        Sum of squared distances of every series to its centroid.
    n_iterations:
        Number of iterations executed.
    converged:
        Whether the displacement threshold was met before ``max_iterations``.
    history:
        Per-iteration snapshots: centroid displacement and inertia.
    """

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    n_iterations: int
    converged: bool
    history: list[dict[str, float]] = field(default_factory=list)


def initialize_centroids(
    data: np.ndarray,
    n_clusters: int,
    method: str = "kmeans++",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Pick the initial centroids.

    ``"random"`` samples k distinct series; ``"kmeans++"`` uses the usual
    D²-weighted seeding; ``"public"`` draws k random curves uniformly inside
    the data's value range *without touching individual series* — this is the
    data-independent initialisation Chiaroscuro uses so that the starting
    centroids cost no privacy budget.
    """
    data = as_2d_float_array(data, "data")
    check_positive_int(n_clusters, "n_clusters")
    if n_clusters > data.shape[0] and method != "public":
        raise ValidationError(
            f"cannot pick {n_clusters} initial centroids from {data.shape[0]} series"
        )
    rng = rng if rng is not None else np.random.default_rng(0)
    if method == "random":
        indices = rng.choice(data.shape[0], size=n_clusters, replace=False)
        return data[indices].copy()
    if method == "kmeans++":
        centroids = np.empty((n_clusters, data.shape[1]))
        first = int(rng.integers(0, data.shape[0]))
        centroids[0] = data[first]
        for index in range(1, n_clusters):
            distances = pairwise_distances(data, centroids[:index], metric="sqeuclidean")
            closest = distances.min(axis=1)
            total = float(closest.sum())
            if total <= 0.0:
                # All points coincide with an existing centroid; fall back to random picks.
                pick = int(rng.integers(0, data.shape[0]))
            else:
                pick = int(rng.choice(data.shape[0], p=closest / total))
            centroids[index] = data[pick]
        return centroids
    if method == "public":
        low = float(data.min())
        high = float(data.max())
        if high <= low:
            high = low + 1.0
        return rng.uniform(low, high, size=(n_clusters, data.shape[1]))
    raise ValidationError(f"unknown initialisation method {method!r}")


def public_initial_centroids(
    n_clusters: int,
    series_length: int,
    value_low: float,
    value_high: float,
    seed: int = 0,
) -> np.ndarray:
    """Data-independent initial centroids shared by every participant.

    All Chiaroscuro participants derive the same starting centroids from a
    public seed and the public value range, so no privacy budget is spent on
    initialisation.  The centroids are near-constant curves at levels evenly
    spread across the public value range (with a small smooth, seeded
    variation to break ties): level-spread curves partition bounded personal
    time-series far more evenly than random curves, which keeps the first
    assignment step from emptying clusters.
    """
    check_positive_int(n_clusters, "n_clusters")
    check_positive_int(series_length, "series_length")
    if value_high <= value_low:
        raise ValidationError(
            f"value_high ({value_high}) must exceed value_low ({value_low})"
        )
    rng = np.random.default_rng(seed)
    span = value_high - value_low
    # Levels at the centres of k equal-width bands of the public range.
    levels = value_low + span * (np.arange(n_clusters) + 0.5) / n_clusters
    grid = np.linspace(0.0, 2.0 * np.pi, num=series_length)
    centroids = np.empty((n_clusters, series_length))
    for cluster in range(n_clusters):
        wobble = 0.05 * span * np.sin(grid + rng.uniform(0.0, 2.0 * np.pi))
        centroids[cluster] = np.clip(levels[cluster] + wobble, value_low, value_high)
    return centroids


def reseed_centroid(
    donor_centroid: np.ndarray,
    value_bound: float,
    iteration: int,
    cluster: int,
    seed: int = 0,
    jitter_fraction: float = 0.05,
) -> np.ndarray:
    """Deterministic, data-independent re-seed for an empty cluster.

    When a cluster receives (almost) no members, its centroid is replaced by
    a jittered copy of a donor centroid (typically the largest cluster's
    perturbed mean) — the classic "split the biggest cluster" repair.  The
    jitter is derived from public values only (seed, iteration, cluster), so
    every Chiaroscuro participant computes the same replacement and no
    private information is consumed.
    """
    donor_centroid = np.asarray(donor_centroid, dtype=float)
    rng = np.random.default_rng((int(seed) * 1_000_003 + iteration * 101 + cluster) % 2**63)
    jitter = rng.normal(0.0, jitter_fraction * value_bound, size=donor_centroid.shape)
    return np.clip(donor_centroid + jitter, 0.0, value_bound)


def assign_to_centroids(data: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Index of the closest centroid for every row of *data* (assignment step)."""
    distances = pairwise_distances(data, centroids, metric="sqeuclidean")
    return distances.argmin(axis=1)


def compute_means(
    data: np.ndarray, assignments: np.ndarray, n_clusters: int,
    fallback_centroids: np.ndarray | None = None,
) -> np.ndarray:
    """Per-cluster means (computation step).

    Empty clusters keep their previous centroid when *fallback_centroids* is
    given, otherwise they are re-seeded on the overall mean.
    """
    data = as_2d_float_array(data, "data")
    means = np.empty((n_clusters, data.shape[1]))
    overall = data.mean(axis=0)
    for cluster in range(n_clusters):
        members = data[assignments == cluster]
        if len(members) == 0:
            if fallback_centroids is not None:
                means[cluster] = fallback_centroids[cluster]
            else:
                means[cluster] = overall
        else:
            means[cluster] = members.mean(axis=0)
    return means


def centroid_displacement(previous: np.ndarray, current: np.ndarray) -> float:
    """Average point-wise L2 displacement between two centroid sets."""
    previous = as_2d_float_array(previous, "previous")
    current = as_2d_float_array(current, "current")
    if previous.shape != current.shape:
        raise ValidationError(
            f"centroid sets have different shapes: {previous.shape} vs {current.shape}"
        )
    return float(np.linalg.norm(previous - current, axis=1).mean())


def compute_inertia(data: np.ndarray, centroids: np.ndarray,
                    assignments: np.ndarray | None = None) -> float:
    """Intra-cluster inertia: sum of squared distances to the assigned centroid."""
    data = as_2d_float_array(data, "data")
    centroids = as_2d_float_array(centroids, "centroids")
    if assignments is None:
        assignments = assign_to_centroids(data, centroids)
    diffs = data - centroids[assignments]
    return float(np.sum(diffs * diffs))


def kmeans(
    data: np.ndarray,
    n_clusters: int,
    max_iterations: int = 100,
    convergence_threshold: float = 1e-4,
    init: str = "kmeans++",
    seed: int = 0,
    initial_centroids: np.ndarray | None = None,
) -> KMeansResult:
    """Run Lloyd's k-means until convergence or ``max_iterations``."""
    data = as_2d_float_array(data, "data")
    check_positive_int(n_clusters, "n_clusters")
    check_positive_int(max_iterations, "max_iterations")
    check_non_negative_float(convergence_threshold, "convergence_threshold")
    rng = np.random.default_rng(seed)
    if initial_centroids is not None:
        centroids = as_2d_float_array(initial_centroids, "initial_centroids").copy()
        if centroids.shape != (n_clusters, data.shape[1]):
            raise ValidationError(
                "initial_centroids has shape "
                f"{centroids.shape}, expected {(n_clusters, data.shape[1])}"
            )
    else:
        centroids = initialize_centroids(data, n_clusters, method=init, rng=rng)
    assignments = assign_to_centroids(data, centroids)
    history: list[dict[str, float]] = []
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        assignments = assign_to_centroids(data, centroids)
        means = compute_means(data, assignments, n_clusters, fallback_centroids=centroids)
        displacement = centroid_displacement(centroids, means)
        centroids = means
        inertia = compute_inertia(data, centroids)
        history.append({
            "iteration": float(iteration),
            "displacement": displacement,
            "inertia": inertia,
        })
        if displacement <= convergence_threshold:
            converged = True
            break
    assignments = assign_to_centroids(data, centroids)
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=compute_inertia(data, centroids, assignments),
        n_iterations=iteration,
        converged=converged,
        history=history,
    )


def best_of_kmeans(
    data: np.ndarray,
    n_clusters: int,
    n_restarts: int = 5,
    **kwargs: object,
) -> KMeansResult:
    """Run k-means ``n_restarts`` times with different seeds; keep the best inertia."""
    check_positive_int(n_restarts, "n_restarts")
    best: KMeansResult | None = None
    base_seed = int(kwargs.pop("seed", 0))  # type: ignore[arg-type]
    for restart in range(n_restarts):
        result = kmeans(data, n_clusters, seed=base_seed + restart, **kwargs)  # type: ignore[arg-type]
        if best is None or result.inertia < best.inertia:
            best = result
    if best is None:
        raise ConvergenceError("no k-means run produced a result")
    return best
