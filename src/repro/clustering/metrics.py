"""Clustering-quality metrics.

The demonstration compares the quality of Chiaroscuro's perturbed centroids
against a centralised k-means (claim C2).  The library reports:

* **intra-cluster inertia** (the k-means objective) and the *relative* inertia
  against a reference clustering — the paper's main quality measure;
* **adjusted Rand index** against the generators' ground-truth labels;
* **silhouette score** as a label-free quality check;
* **centroid matching error** — average distance between each reference
  centroid and its best-matching produced centroid, which quantifies how
  recognisable the noisy profiles remain (the "impact of the noise on the
  centroids" panel of the demo GUI).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from .._validation import as_2d_float_array, check_positive_int
from ..exceptions import ValidationError
from ..timeseries.distance import pairwise_distances
from .kmeans import assign_to_centroids, compute_inertia


def relative_inertia(data: np.ndarray, centroids: np.ndarray,
                     reference_inertia: float) -> float:
    """Inertia of *centroids* on *data*, divided by a reference inertia.

    A value of 1.0 means "as good as the reference" (typically the
    centralised, non-private k-means); larger values quantify the degradation
    caused by privacy and distribution.
    """
    if reference_inertia <= 0:
        raise ValidationError(f"reference_inertia must be > 0, got {reference_inertia}")
    return compute_inertia(data, centroids) / reference_inertia


def contingency_table(labels_a: np.ndarray, labels_b: np.ndarray) -> np.ndarray:
    """Contingency table between two label vectors."""
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    if labels_a.shape != labels_b.shape:
        raise ValidationError("label vectors must have the same length")
    values_a, indices_a = np.unique(labels_a, return_inverse=True)
    values_b, indices_b = np.unique(labels_b, return_inverse=True)
    table = np.zeros((len(values_a), len(values_b)), dtype=np.int64)
    np.add.at(table, (indices_a, indices_b), 1)
    return table


def adjusted_rand_index(labels_true: np.ndarray, labels_pred: np.ndarray) -> float:
    """Adjusted Rand index between two labelings (1 = identical partitions)."""
    table = contingency_table(labels_true, labels_pred)
    n = table.sum()
    if n <= 1:
        return 1.0
    sum_comb_cells = float((table * (table - 1) / 2).sum())
    sum_comb_rows = float((table.sum(axis=1) * (table.sum(axis=1) - 1) / 2).sum())
    sum_comb_cols = float((table.sum(axis=0) * (table.sum(axis=0) - 1) / 2).sum())
    total_pairs = float(n * (n - 1) / 2)
    expected = sum_comb_rows * sum_comb_cols / total_pairs
    maximum = 0.5 * (sum_comb_rows + sum_comb_cols)
    if maximum == expected:
        return 1.0
    return (sum_comb_cells - expected) / (maximum - expected)


def silhouette_score(data: np.ndarray, assignments: np.ndarray,
                     sample_size: int | None = None, seed: int = 0) -> float:
    """Mean silhouette coefficient of a clustering (label-free quality).

    For large datasets a random sample of *sample_size* points keeps the
    O(n²) distance computation affordable.
    """
    data = as_2d_float_array(data, "data")
    assignments = np.asarray(assignments)
    if len(assignments) != len(data):
        raise ValidationError("assignments must have one entry per series")
    labels = np.unique(assignments)
    if len(labels) < 2:
        return 0.0
    if sample_size is not None and sample_size < len(data):
        check_positive_int(sample_size, "sample_size")
        rng = np.random.default_rng(seed)
        picked = rng.choice(len(data), size=sample_size, replace=False)
    else:
        picked = np.arange(len(data))
    distances = pairwise_distances(data[picked], data, metric="euclidean")
    scores = []
    for row, index in enumerate(picked):
        own_label = assignments[index]
        own_mask = assignments == own_label
        own_mask_excl = own_mask.copy()
        own_mask_excl[index] = False
        if own_mask_excl.sum() == 0:
            scores.append(0.0)
            continue
        a_value = distances[row, own_mask_excl].mean()
        b_value = np.inf
        for label in labels:
            if label == own_label:
                continue
            other_mask = assignments == label
            if other_mask.sum() == 0:
                continue
            b_value = min(b_value, distances[row, other_mask].mean())
        if not np.isfinite(b_value):
            scores.append(0.0)
            continue
        denominator = max(a_value, b_value)
        scores.append(0.0 if denominator == 0 else (b_value - a_value) / denominator)
    return float(np.mean(scores))


def match_centroids(reference: np.ndarray, produced: np.ndarray) -> list[tuple[int, int]]:
    """Optimal one-to-one matching between two centroid sets (Hungarian method).

    Returns (reference_index, produced_index) pairs minimising the total
    Euclidean distance.  When the sets have different sizes, the smaller one
    is fully matched.
    """
    reference = as_2d_float_array(reference, "reference")
    produced = as_2d_float_array(produced, "produced")
    if reference.shape[1] != produced.shape[1]:
        raise ValidationError("centroid sets must share their series length")
    costs = pairwise_distances(reference, produced, metric="euclidean")
    row_indices, col_indices = optimize.linear_sum_assignment(costs)
    return list(zip(row_indices.tolist(), col_indices.tolist()))


def centroid_matching_error(reference: np.ndarray, produced: np.ndarray) -> float:
    """Average distance between matched reference/produced centroid pairs."""
    pairs = match_centroids(reference, produced)
    if not pairs:
        raise ValidationError("no centroid pairs to compare")
    costs = pairwise_distances(
        as_2d_float_array(reference, "reference"),
        as_2d_float_array(produced, "produced"),
        metric="euclidean",
    )
    return float(np.mean([costs[i, j] for i, j in pairs]))


def quality_report(
    data: np.ndarray,
    centroids: np.ndarray,
    reference_centroids: np.ndarray | None = None,
    reference_inertia: float | None = None,
    true_labels: np.ndarray | None = None,
) -> dict[str, float]:
    """Assemble every applicable quality metric into one dictionary."""
    data = as_2d_float_array(data, "data")
    centroids = as_2d_float_array(centroids, "centroids")
    assignments = assign_to_centroids(data, centroids)
    report: dict[str, float] = {
        "inertia": compute_inertia(data, centroids, assignments),
        "n_clusters_used": float(len(np.unique(assignments))),
    }
    if reference_inertia is not None and reference_inertia > 0:
        report["relative_inertia"] = report["inertia"] / reference_inertia
    if reference_centroids is not None:
        report["centroid_matching_error"] = centroid_matching_error(
            reference_centroids, centroids
        )
    if true_labels is not None:
        report["adjusted_rand_index"] = adjusted_rand_index(
            np.asarray(true_labels), assignments
        )
    return report
