"""Privacy vs quality vs cost trade-offs — the demo's parameter playground.

The demonstration lets the audience change the differential-privacy level,
the quality-enhancing heuristics and the number of participants required for
decryption, and observe the effect on quality and cost.  This example sweeps
those same knobs programmatically and prints one table per knob.

Run with:  python examples/privacy_tradeoffs.py
"""

from __future__ import annotations

from repro import ChiaroscuroConfig, generate_gaussian_clusters, run_chiaroscuro
from repro.analysis import (
    centralized_reference,
    evaluate_result,
    format_table,
    heuristics_ablation,
    sweep_crypto_costs,
    CostModel,
    ProtocolWorkload,
)


def main() -> None:
    data = generate_gaussian_clusters(
        n_series=120, series_length=24, n_clusters=4, noise_std=0.05, seed=23
    )
    config = ChiaroscuroConfig().with_overrides(
        kmeans={"n_clusters": 4, "max_iterations": 5},
        privacy={"epsilon": 1.0, "noise_shares": 32},
        gossip={"cycles_per_aggregation": 10},
        simulation={"n_participants": 120, "seed": 23},
    )
    reference = centralized_reference(data, config)

    # --- knob 1: the differential-privacy level ---------------------------------
    rows = []
    for epsilon in (0.25, 0.5, 1.0, 2.0, 5.0, 10.0):
        run_config = config.with_overrides(privacy={"epsilon": epsilon})
        result = run_chiaroscuro(data, run_config)
        report = evaluate_result(data, run_config, result, reference, "cluster")
        rows.append({
            "epsilon": epsilon,
            "relative_inertia": report["relative_inertia"],
            "adjusted_rand_index": report["adjusted_rand_index"],
            "effective_epsilon": result.guarantee.effective_epsilon,
            "delta": result.guarantee.delta,
        })
    print(format_table(rows, title="knob 1: privacy level (epsilon)"))

    # --- knob 2: the quality-enhancing heuristics --------------------------------
    ablation = heuristics_ablation(
        data, config,
        strategies=("uniform", "geometric"),
        smoothing_methods=("none", "lowpass"),
        label_key="cluster",
    )
    print()
    print(format_table(
        ablation,
        columns=["budget_strategy", "smoothing", "relative_inertia", "adjusted_rand_index"],
        title="knob 2: quality-enhancing heuristics (epsilon=1)",
    ))

    # --- knob 3: the number of participants required for decryption --------------
    # Measured once per fastmath mode: the "off" column is the seed
    # arithmetic, the "auto" column shows what a device gains from the
    # public fastmath accelerations (same integers, less time).
    profiles = sweep_crypto_costs(key_bits=512, degree=1, threshold=3, n_shares=8,
                                  repetitions=3)
    rows = []
    for fastmath, profile in profiles.items():
        for threshold in (2, 4, 8):
            workload = ProtocolWorkload(
                n_clusters=4, series_length=24, iterations=5,
                gossip_cycles=10, exchanges_per_cycle=1, threshold=threshold,
                amortized_encryptions=fastmath != "off",
            )
            estimate = CostModel(profile).estimate(workload)
            rows.append({
                "fastmath": fastmath,
                "decryption_threshold": threshold,
                "decryption_seconds": estimate.decryption_seconds,
                "total_compute_seconds": estimate.total_compute_seconds,
                "kbytes_sent": estimate.bytes_sent / 1024,
            })
    print()
    print(format_table(rows, title="knob 3: participants required for decryption (cost model)"))


if __name__ == "__main__":
    main()
