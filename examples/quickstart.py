"""Quickstart: cluster synthetic smart-meter data with Chiaroscuro.

This is the smallest useful end-to-end run: generate a CER-like population of
household electricity time-series, run the privacy-preserving distributed
clustering, and inspect the resulting profiles, the privacy guarantee and the
per-participant costs.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ChiaroscuroConfig, generate_cer_like, run_chiaroscuro
from repro.analysis import format_series, format_table


def main() -> None:
    # 1. One day of half-hourly consumption for 100 households.  In a real
    #    deployment each series would live on its owner's device; here the
    #    collection only feeds the simulator.
    households = generate_cer_like(n_households=100, n_days=1, seed=7)
    print(f"dataset: {len(households)} households x {households.series_length} readings")

    # 2. Configure the protocol: 4 profiles, a total privacy budget of eps=2,
    #    32 noise-share contributors and 10 gossip cycles per aggregation.
    config = ChiaroscuroConfig().with_overrides(
        kmeans={"n_clusters": 4, "max_iterations": 6},
        privacy={"epsilon": 2.0, "noise_shares": 32},
        gossip={"cycles_per_aggregation": 10},
        simulation={"n_participants": 100, "seed": 1},
    )

    # 3. Run the full protocol (assignment / encrypted gossip / collaborative
    #    decryption / convergence, iterated).
    result = run_chiaroscuro(households, config)

    # 4. Inspect the outcome.
    print()
    print(format_table([result.summary()], title="run summary"))
    print()
    sizes = result.cluster_sizes()
    print(format_table(
        [{"profile": cluster, "households": size} for cluster, size in sizes.items()],
        title="profile sizes",
    ))
    print()
    print(format_series(
        result.log.displacements(), label="centroid displacement per iteration",
    ))
    print()
    print("privacy guarantee:", result.guarantee.as_dict())
    print(f"average traffic per household: {result.costs.bytes_per_participant / 1024:.1f} KiB")


if __name__ == "__main__":
    main()
