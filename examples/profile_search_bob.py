"""Bob's use of the clustering result (Fig. 3, panel 6 of the demonstration).

Bob participated in the clustering with his own time-series but never shared
it in clear.  Once the run finishes, every participant — including Bob —
holds the differentially-private profiles.  Bob selects a sub-sequence of his
own series (say, the last six weeks of his weight curve or the evening hours
of his consumption) and asks for the profiles closest to it, for instance to
discover groups whose trajectory he would like to follow.

Run with:  python examples/profile_search_bob.py
"""

from __future__ import annotations

import numpy as np

from repro import ChiaroscuroConfig, generate_numed_like, run_chiaroscuro
from repro.analysis import closest_profiles, format_table
from repro.core.runner import normalize_collection


def main() -> None:
    patients = generate_numed_like(n_patients=120, n_weeks=20, seed=31)
    config = ChiaroscuroConfig().with_overrides(
        kmeans={"n_clusters": 4, "max_iterations": 6},
        privacy={"epsilon": 5.0, "noise_shares": 32},
        gossip={"cycles_per_aggregation": 10},
        smoothing={"method": "lowpass", "lowpass_cutoff": 0.3},
        simulation={"n_participants": 120, "seed": 31},
    )
    result = run_chiaroscuro(patients, config)

    # Bob is participant 0; his series is normalised the same way the run was.
    data, _transform = normalize_collection(patients, config.privacy.value_bound)
    bob = data[0]
    print(f"Bob's archetype (ground truth, unknown to the protocol): "
          f"{patients[0].metadata['archetype']}")
    print(f"Bob is assigned to profile {int(result.assignments[0])}")

    # Bob selects three different sub-sequences of his own series and asks for
    # the closest profiles each time (the GUI's interactive slider).
    for label, (start, end) in {
        "first five weeks": (0, 5),
        "middle of the follow-up": (7, 14),
        "last six weeks": (14, 20),
    }.items():
        query = bob[start:end]
        matches = closest_profiles(result.profiles, query, top=3)
        print()
        print(format_table(
            [match.as_dict() for match in matches],
            title=f"profiles closest to Bob's sub-sequence: {label} (weeks {start + 1}-{end})",
        ))

    # How distinctive are the profiles Bob can compare himself against?
    rows = []
    for cluster in range(result.n_clusters):
        profile = result.profiles[cluster]
        rows.append({
            "profile": cluster,
            "members": int((result.assignments == cluster).sum()),
            "start_level": float(profile[0]),
            "end_level": float(profile[-1]),
            "direction": "decreasing" if profile[-1] < profile[0] else "increasing",
        })
    print()
    print(format_table(rows, title="the profiles available to Bob (normalised units)"))
    print()
    print("Nothing Bob does here touches any other individual's raw series: the")
    print("profiles he queries are the differentially-private outputs of the run.")
    print("realised guarantee:", result.guarantee.as_dict())


if __name__ == "__main__":
    main()
