"""Electricity-consumption scenario: privacy vs quality on CER-like data.

Reproduces, at example scale, the demonstration's main storyline on the
electricity use-case: compare Chiaroscuro's clustering quality against the
centralised (non-private) k-means and against a trusted-curator DP k-means at
several privacy budgets, then show which behavioural archetype each resulting
profile captures.

Run with:  python examples/electricity_consumption.py
"""

from __future__ import annotations

import numpy as np

from repro import ChiaroscuroConfig, generate_cer_like, run_chiaroscuro
from repro.analysis import (
    centralized_reference,
    compare_with_baselines,
    evaluate_result,
    format_comparison,
    format_table,
)


def main() -> None:
    households = generate_cer_like(n_households=150, n_days=1, readings_per_day=24, seed=3)
    config = ChiaroscuroConfig().with_overrides(
        kmeans={"n_clusters": 5, "max_iterations": 6},
        privacy={"epsilon": 2.0, "noise_shares": 40},
        gossip={"cycles_per_aggregation": 10},
        simulation={"n_participants": 150, "seed": 3},
    )

    # --- Chiaroscuro vs baselines at epsilon = 2 -------------------------------
    reports = compare_with_baselines(households, config, label_key="archetype")
    print(format_comparison(
        reports,
        columns=["relative_inertia", "adjusted_rand_index", "centroid_matching_error"],
        title="Chiaroscuro vs baselines on CER-like data (epsilon=2)",
    ))

    # --- privacy budget sweep ---------------------------------------------------
    reference = centralized_reference(households, config)
    rows = []
    for epsilon in (0.5, 1.0, 2.0, 5.0):
        run_config = config.with_overrides(privacy={"epsilon": epsilon})
        result = run_chiaroscuro(households, run_config)
        report = evaluate_result(households, run_config, result, reference, "archetype")
        rows.append({"epsilon": epsilon, **{k: report[k] for k in
                                            ("relative_inertia", "adjusted_rand_index")}})
    print()
    print(format_table(rows, title="privacy vs quality sweep"))

    # --- what does each profile look like? --------------------------------------
    result = run_chiaroscuro(households, config)
    archetypes = np.array(households.labels("archetype"))
    profile_rows = []
    for cluster in range(result.n_clusters):
        members = archetypes[result.assignments == cluster]
        dominant = "-" if len(members) == 0 else max(set(members), key=list(members).count)
        profile = result.profiles[cluster]
        profile_rows.append({
            "profile": cluster,
            "households": int((result.assignments == cluster).sum()),
            "dominant_archetype": dominant,
            "morning_level": float(profile[6:9].mean()),
            "evening_level": float(profile[17:21].mean()),
            "night_level": float(profile[0:4].mean()),
        })
    print()
    print(format_table(profile_rows, title="resulting consumption profiles (normalised units)"))


if __name__ == "__main__":
    main()
