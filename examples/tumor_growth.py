"""Tumor-growth scenario: the demonstration's first GUI use-case.

Clusters NUMED-like tumor-size time-series (twenty weeks of follow-up,
generated from the Claret tumor-growth-inhibition model) with Chiaroscuro,
then replays what the demo GUI shows: the evolution of a few tracked
patients' closest centroid along the iterations, the impact of the noise on
the centroids, and the clinical interpretation of the resulting profiles.

Run with:  python examples/tumor_growth.py
"""

from __future__ import annotations

import numpy as np

from repro import ChiaroscuroConfig, generate_numed_like, run_chiaroscuro
from repro.analysis import format_series, format_table
from repro.core.runner import denormalize_profiles


def main() -> None:
    patients = generate_numed_like(n_patients=150, n_weeks=20, seed=11)
    config = ChiaroscuroConfig().with_overrides(
        kmeans={"n_clusters": 4, "max_iterations": 7},
        privacy={"epsilon": 5.0, "noise_shares": 40},
        gossip={"cycles_per_aggregation": 10},
        smoothing={"method": "lowpass", "lowpass_cutoff": 0.3},
        simulation={"n_participants": 150, "seed": 11},
    )
    result = run_chiaroscuro(patients, config)

    # --- Fig. 3 panel 4: tracked patients' closest centroid per iteration -------
    history = result.log.tracked_assignment_history()
    rows = [
        {"patient": patient,
         **{f"iteration_{i + 1}": cluster for i, cluster in enumerate(assignments)}}
        for patient, assignments in sorted(history.items())
    ]
    print(format_table(rows, title="closest centroid of tracked patients, per iteration"))

    # --- Fig. 3 panel 5: impact of the noise on the centroids -------------------
    print()
    print(format_series(
        result.log.noise_magnitudes(),
        label="L2 distance between perturbed and noise-free means, per iteration",
    ))

    # --- clinical reading of the profiles (back in millimetres) -----------------
    profiles_mm = denormalize_profiles(result.profiles, result.metadata["normalization"])
    archetypes = np.array(patients.labels("archetype"))
    rows = []
    for cluster in range(result.n_clusters):
        members = archetypes[result.assignments == cluster]
        dominant = "-" if len(members) == 0 else max(set(members), key=list(members).count)
        profile = profiles_mm[cluster]
        rows.append({
            "profile": cluster,
            "patients": int((result.assignments == cluster).sum()),
            "dominant_response": dominant,
            "baseline_mm": float(profile[0]),
            "week20_mm": float(profile[-1]),
            "trend": "shrinking" if profile[-1] < profile[0] else "growing",
        })
    print()
    print(format_table(rows, title="resulting tumor-growth profiles"))
    print()
    print("privacy guarantee:", result.guarantee.as_dict())


if __name__ == "__main__":
    main()
